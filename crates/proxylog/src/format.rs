//! Text log format.
//!
//! One transaction per line, comma-separated, mirroring the paper's example
//! record (Sect. III-A):
//!
//! ```text
//! 2015-05-29 05:05:04, site-812.example.com, HTTP, GET, user_9, device_3, Games, text/html, Rhapsody, Minimal, public
//! ```
//!
//! Fields: timestamp, domain, uri-scheme, http-action, user, device,
//! category, media type, application type, reputation, destination
//! visibility (`public`/`private`).

use crate::record::{HttpAction, Reputation, SiteId, Transaction, UriScheme};
use crate::taxonomy::Taxonomy;
use crate::time::Timestamp;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Number of comma-separated fields per line.
const FIELD_COUNT: usize = 11;

/// Serializes one transaction as a log line (no trailing newline).
///
/// # Examples
///
/// ```
/// use proxylog::{format_line, parse_line, Taxonomy, Transaction};
/// # use proxylog::{CategoryId, SubtypeId, AppTypeId, DeviceId, HttpAction, Reputation,
/// #     SiteId, Timestamp, UriScheme, UserId};
///
/// let taxonomy = Taxonomy::paper_scale();
/// # let tx = Transaction {
/// #     timestamp: Timestamp::from_civil(2015, 5, 29, 5, 5, 4),
/// #     user: UserId(9), device: DeviceId(3), site: SiteId(812),
/// #     action: HttpAction::Get, scheme: UriScheme::Http,
/// #     category: CategoryId(0), subtype: taxonomy.subtype_by_media_string("text/html").unwrap(),
/// #     app_type: AppTypeId(0), reputation: Reputation::Minimal, private_destination: false,
/// # };
/// let line = format_line(&tx, &taxonomy);
/// assert!(line.starts_with("2015-05-29 05:05:04, site-812.example.com, HTTP, GET, user_9"));
/// let parsed = parse_line(&line, &taxonomy)?;
/// assert_eq!(parsed, tx);
/// # Ok::<(), proxylog::ParseLineError>(())
/// ```
pub fn format_line(tx: &Transaction, taxonomy: &Taxonomy) -> String {
    format!(
        "{}, {}, {}, {}, {}, {}, {}, {}, {}, {}, {}",
        tx.timestamp,
        tx.site,
        tx.scheme,
        tx.action,
        tx.user,
        tx.device,
        taxonomy.category_name(tx.category),
        taxonomy.media_type_string(tx.subtype),
        taxonomy.app_type_name(tx.app_type),
        tx.reputation,
        if tx.private_destination { "private" } else { "public" },
    )
}

/// Error produced by [`parse_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLineError {
    /// 0-based field index where parsing failed, or `FIELD_COUNT` when the
    /// line had the wrong number of fields.
    pub field: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseLineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log line field {}: {}", self.field, self.message)
    }
}

impl std::error::Error for ParseLineError {}

fn field_err(field: usize, message: impl Into<String>) -> ParseLineError {
    ParseLineError { field, message: message.into() }
}

/// Parses one log line produced by [`format_line`].
///
/// # Errors
///
/// Returns [`ParseLineError`] naming the offending field when the line has
/// the wrong arity, a malformed field, or taxonomy names unknown to
/// `taxonomy`.
pub fn parse_line(line: &str, taxonomy: &Taxonomy) -> Result<Transaction, ParseLineError> {
    let fields: Vec<&str> = line.split(", ").collect();
    if fields.len() != FIELD_COUNT {
        return Err(field_err(
            FIELD_COUNT,
            format!("expected {FIELD_COUNT} fields, found {}", fields.len()),
        ));
    }
    let timestamp: Timestamp = fields[0].parse().map_err(|e| field_err(0, format!("{e}")))?;
    let site = parse_site(fields[1]).ok_or_else(|| field_err(1, "invalid domain"))?;
    let scheme: UriScheme = fields[2].parse().map_err(|e| field_err(2, format!("{e}")))?;
    let action: HttpAction = fields[3].parse().map_err(|e| field_err(3, format!("{e}")))?;
    let user = fields[4].parse().map_err(|e| field_err(4, format!("{e}")))?;
    let device = fields[5].parse().map_err(|e| field_err(5, format!("{e}")))?;
    let category = taxonomy
        .category_by_name(fields[6])
        .ok_or_else(|| field_err(6, format!("unknown category {:?}", fields[6])))?;
    let subtype = taxonomy
        .subtype_by_media_string(fields[7])
        .ok_or_else(|| field_err(7, format!("unknown media type {:?}", fields[7])))?;
    let app_type = taxonomy
        .app_type_by_name(fields[8])
        .ok_or_else(|| field_err(8, format!("unknown application type {:?}", fields[8])))?;
    let reputation: Reputation = fields[9].parse().map_err(|e| field_err(9, format!("{e}")))?;
    let private_destination = match fields[10] {
        "public" => false,
        "private" => true,
        other => return Err(field_err(10, format!("expected public/private, got {other:?}"))),
    };
    Ok(Transaction {
        timestamp,
        user,
        device,
        site,
        action,
        scheme,
        category,
        subtype,
        app_type,
        reputation,
        private_destination,
    })
}

fn parse_site(domain: &str) -> Option<SiteId> {
    domain
        .strip_prefix("site-")
        .and_then(|rest| rest.strip_suffix(".example.com"))
        .and_then(|n| n.parse().ok())
        .map(SiteId)
}

/// Writes transactions as log lines to `writer` (which may be a `&mut`
/// reference).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_log<W: Write>(
    mut writer: W,
    transactions: &[Transaction],
    taxonomy: &Taxonomy,
) -> io::Result<()> {
    for tx in transactions {
        writeln!(writer, "{}", format_line(tx, taxonomy))?;
    }
    Ok(())
}

/// Reads a log written by [`write_log`]; empty lines are skipped.
///
/// # Errors
///
/// Returns an `io::Error` for read failures; parse failures are wrapped as
/// `io::ErrorKind::InvalidData` with the line number in the message.
pub fn read_log<R: BufRead>(reader: R, taxonomy: &Taxonomy) -> io::Result<Vec<Transaction>> {
    LogReader::new(reader, taxonomy).collect()
}

/// Lazy log reader: yields one transaction per line, so multi-gigabyte
/// logs can be filtered or windowed without loading everything.
///
/// Produced transactions are in file order; blank lines are skipped. Each
/// item is a `Result`, with parse failures reported as
/// `io::ErrorKind::InvalidData` carrying the line number.
///
/// # Examples
///
/// ```
/// use proxylog::{LogReader, Taxonomy};
///
/// let taxonomy = Taxonomy::paper_scale();
/// let log = b"".as_slice();
/// let count = LogReader::new(log, &taxonomy).count();
/// assert_eq!(count, 0);
/// ```
#[derive(Debug)]
pub struct LogReader<'a, R> {
    lines: std::io::Lines<R>,
    taxonomy: &'a Taxonomy,
    line_no: usize,
}

impl<'a, R: BufRead> LogReader<'a, R> {
    /// Creates a reader over `reader` (which may be a `&mut` reference).
    pub fn new(reader: R, taxonomy: &'a Taxonomy) -> Self {
        Self { lines: reader.lines(), taxonomy, line_no: 0 }
    }
}

impl<R: BufRead> Iterator for LogReader<'_, R> {
    type Item = io::Result<Transaction>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.line_no += 1;
            match self.lines.next()? {
                Err(e) => return Some(Err(e)),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => {
                    return Some(parse_line(&line, self.taxonomy).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("line {}: {e}", self.line_no),
                        )
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DeviceId, UserId};
    use crate::taxonomy::{AppTypeId, CategoryId};

    fn example(taxonomy: &Taxonomy) -> Transaction {
        Transaction {
            timestamp: Timestamp::from_civil(2015, 5, 29, 5, 5, 4),
            user: UserId(9),
            device: DeviceId(3),
            site: SiteId(812),
            action: HttpAction::Get,
            scheme: UriScheme::Http,
            category: taxonomy.category_by_name("Games").unwrap(),
            subtype: taxonomy.subtype_by_media_string("text/html").unwrap(),
            app_type: AppTypeId(0),
            reputation: Reputation::Minimal,
            private_destination: false,
        }
    }

    #[test]
    fn format_matches_paper_shape() {
        let taxonomy = Taxonomy::paper_scale();
        let line = format_line(&example(&taxonomy), &taxonomy);
        assert_eq!(
            line,
            "2015-05-29 05:05:04, site-812.example.com, HTTP, GET, user_9, device_3, \
             Games, text/html, Rhapsody, Minimal, public"
        );
    }

    #[test]
    fn round_trip() {
        let taxonomy = Taxonomy::paper_scale();
        let tx = example(&taxonomy);
        let parsed = parse_line(&format_line(&tx, &taxonomy), &taxonomy).unwrap();
        assert_eq!(parsed, tx);
    }

    #[test]
    fn round_trip_private_https_connect() {
        let taxonomy = Taxonomy::paper_scale();
        let tx = Transaction {
            action: HttpAction::Connect,
            scheme: UriScheme::Https,
            reputation: Reputation::Unverified,
            private_destination: true,
            category: CategoryId(104),
            ..example(&taxonomy)
        };
        let parsed = parse_line(&format_line(&tx, &taxonomy), &taxonomy).unwrap();
        assert_eq!(parsed, tx);
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let taxonomy = Taxonomy::paper_scale();
        let err = parse_line("a, b, c", &taxonomy).unwrap_err();
        assert!(err.to_string().contains("expected 11 fields"));
    }

    #[test]
    fn unknown_category_is_rejected_with_field_index() {
        let taxonomy = Taxonomy::paper_scale();
        let line = format_line(&example(&taxonomy), &taxonomy).replace("Games", "Nonsense");
        let err = parse_line(&line, &taxonomy).unwrap_err();
        assert_eq!(err.field, 6);
    }

    #[test]
    fn bad_visibility_is_rejected() {
        let taxonomy = Taxonomy::paper_scale();
        let line = format_line(&example(&taxonomy), &taxonomy).replace("public", "global");
        let err = parse_line(&line, &taxonomy).unwrap_err();
        assert_eq!(err.field, 10);
    }

    #[test]
    fn write_and_read_log() {
        let taxonomy = Taxonomy::paper_scale();
        let txs = vec![example(&taxonomy), Transaction { user: UserId(2), ..example(&taxonomy) }];
        let mut buffer = Vec::new();
        write_log(&mut buffer, &txs, &taxonomy).unwrap();
        let read = read_log(buffer.as_slice(), &taxonomy).unwrap();
        assert_eq!(read, txs);
    }

    #[test]
    fn log_reader_is_lazy_and_reports_position() {
        let taxonomy = Taxonomy::paper_scale();
        let mut buffer = Vec::new();
        write_log(&mut buffer, &[example(&taxonomy)], &taxonomy).unwrap();
        buffer.extend_from_slice(b"\ngarbage\n");
        write_log(&mut buffer, &[example(&taxonomy)], &taxonomy).unwrap();
        let mut reader = LogReader::new(buffer.as_slice(), &taxonomy);
        // First record parses despite the later garbage (laziness).
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert!(err.to_string().contains("line 3"), "got {err}");
        // The reader can continue past the bad line.
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().is_none());
    }

    #[test]
    fn read_log_skips_blank_lines_and_reports_line_numbers() {
        let taxonomy = Taxonomy::paper_scale();
        let mut buffer = Vec::new();
        write_log(&mut buffer, &[example(&taxonomy)], &taxonomy).unwrap();
        buffer.extend_from_slice(b"\ngarbage line\n");
        let err = read_log(buffer.as_slice(), &taxonomy).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 3"), "got {err}");
    }
}
