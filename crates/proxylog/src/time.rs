//! Minimal civil-time handling for log timestamps.
//!
//! The log format uses `YYYY-MM-DD HH:MM:SS` wall-clock timestamps (UTC).
//! Rather than pulling in a calendar crate, this module implements the
//! standard days-from-civil / civil-from-days algorithms (Howard Hinnant's
//! `chrono`-compatible formulation), which are exact over the proleptic
//! Gregorian calendar.

use std::fmt;
use std::str::FromStr;

/// Seconds since the Unix epoch (UTC), as used by every log record.
///
/// # Examples
///
/// ```
/// use proxylog::Timestamp;
///
/// let t: Timestamp = "2015-05-29 05:05:04".parse()?;
/// assert_eq!(t.to_string(), "2015-05-29 05:05:04");
/// assert_eq!((t + 56).to_string(), "2015-05-29 05:06:00");
/// # Ok::<(), proxylog::ParseTimestampError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp(pub i64);

impl Timestamp {
    /// Builds a timestamp from civil date and time components.
    ///
    /// # Panics
    ///
    /// Panics if the components do not form a valid date/time (month 1–12,
    /// day valid for the month, hour < 24, minute/second < 60).
    pub fn from_civil(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} invalid for {year}-{month}"
        );
        assert!(hour < 24 && minute < 60 && second < 60, "invalid time {hour}:{minute}:{second}");
        let days = days_from_civil(year, month, day);
        Timestamp(
            days * 86_400 + i64::from(hour) * 3600 + i64::from(minute) * 60 + i64::from(second),
        )
    }

    /// Decomposes into `(year, month, day, hour, minute, second)`.
    pub fn to_civil(self) -> (i32, u32, u32, u32, u32, u32) {
        let days = self.0.div_euclid(86_400);
        let secs = self.0.rem_euclid(86_400);
        let (y, m, d) = civil_from_days(days);
        let hour = (secs / 3600) as u32;
        let minute = (secs % 3600 / 60) as u32;
        let second = (secs % 60) as u32;
        (y, m, d, hour, minute, second)
    }

    /// Raw seconds since the Unix epoch.
    pub fn as_secs(self) -> i64 {
        self.0
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub fn weekday(self) -> u32 {
        // 1970-01-01 was a Thursday (index 3).
        ((self.0.div_euclid(86_400) + 3).rem_euclid(7)) as u32
    }

    /// Seconds elapsed since local midnight.
    pub fn seconds_of_day(self) -> u32 {
        self.0.rem_euclid(86_400) as u32
    }
}

impl std::ops::Add<i64> for Timestamp {
    type Output = Timestamp;
    fn add(self, seconds: i64) -> Timestamp {
        Timestamp(self.0 + seconds)
    }
}

impl std::ops::Sub<Timestamp> for Timestamp {
    type Output = i64;
    fn sub(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d, h, mi, s) = self.to_civil();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

/// Error parsing a `YYYY-MM-DD HH:MM:SS` timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimestampError {
    input: String,
}

impl fmt::Display for ParseTimestampError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid timestamp {:?}, expected YYYY-MM-DD HH:MM:SS", self.input)
    }
}

impl std::error::Error for ParseTimestampError {}

impl FromStr for Timestamp {
    type Err = ParseTimestampError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTimestampError { input: s.to_owned() };
        let (date, time) = s.split_once(' ').ok_or_else(err)?;
        let mut date_parts = date.splitn(3, '-');
        let mut time_parts = time.splitn(3, ':');
        let year: i32 = date_parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let month: u32 = date_parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let day: u32 = date_parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let hour: u32 = time_parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let minute: u32 = time_parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let second: u32 = time_parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        if !(1..=12).contains(&month)
            || day < 1
            || day > days_in_month(year, month)
            || hour >= 24
            || minute >= 60
            || second >= 60
        {
            return Err(err());
        }
        Ok(Timestamp::from_civil(year, month, day, hour, minute, second))
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 if is_leap(year) => 29,
        2 => 28,
        _ => 0,
    }
}

/// Days since 1970-01-01 for a civil date (Hinnant's algorithm).
fn days_from_civil(year: i32, month: u32, day: u32) -> i64 {
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((month + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (Hinnant's algorithm).
fn civil_from_days(days: i64) -> (i32, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = ((mp + 2) % 12 + 1) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(Timestamp(0).to_string(), "1970-01-01 00:00:00");
    }

    #[test]
    fn paper_example_round_trips() {
        let t: Timestamp = "2015-05-29 05:05:04".parse().unwrap();
        assert_eq!(t.to_string(), "2015-05-29 05:05:04");
        let (y, mo, d, h, mi, s) = t.to_civil();
        assert_eq!((y, mo, d, h, mi, s), (2015, 5, 29, 5, 5, 4));
    }

    #[test]
    fn leap_year_handling() {
        let t = Timestamp::from_civil(2016, 2, 29, 12, 0, 0);
        assert_eq!(t.to_string(), "2016-02-29 12:00:00");
        assert!("2015-02-29 00:00:00".parse::<Timestamp>().is_err());
        assert!("2000-02-29 00:00:00".parse::<Timestamp>().is_ok()); // 400-year rule
        assert!("1900-02-29 00:00:00".parse::<Timestamp>().is_err()); // 100-year rule
    }

    #[test]
    fn civil_round_trip_over_decades() {
        for days in (-20_000..40_000).step_by(17) {
            let t = Timestamp(i64::from(days) * 86_400 + 12_345);
            let (y, mo, d, h, mi, s) = t.to_civil();
            assert_eq!(Timestamp::from_civil(y, mo, d, h, mi, s), t);
        }
    }

    #[test]
    fn weekday_is_correct() {
        // 1970-01-01 was a Thursday.
        assert_eq!(Timestamp::from_civil(1970, 1, 1, 0, 0, 0).weekday(), 3);
        // 2015-05-29 was a Friday.
        assert_eq!(Timestamp::from_civil(2015, 5, 29, 10, 0, 0).weekday(), 4);
        // 2017-01-01 was a Sunday.
        assert_eq!(Timestamp::from_civil(2017, 1, 1, 0, 0, 0).weekday(), 6);
    }

    #[test]
    fn seconds_of_day() {
        let t = Timestamp::from_civil(2015, 6, 1, 1, 2, 3);
        assert_eq!(t.seconds_of_day(), 3723);
    }

    #[test]
    fn ordering_follows_time() {
        let a = Timestamp::from_civil(2015, 1, 1, 0, 0, 0);
        let b = Timestamp::from_civil(2015, 1, 1, 0, 0, 1);
        assert!(a < b);
        assert_eq!(b - a, 1);
        assert_eq!(a + 1, b);
    }

    #[test]
    fn rejects_malformed_strings() {
        for bad in [
            "",
            "2015-05-29",
            "2015/05/29 05:05:04",
            "2015-13-01 00:00:00",
            "2015-00-10 00:00:00",
            "2015-01-32 00:00:00",
            "2015-01-01 24:00:00",
            "2015-01-01 00:60:00",
            "not a date at all",
        ] {
            assert!(bad.parse::<Timestamp>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn display_error_mentions_format() {
        let err = "nope".parse::<Timestamp>().unwrap_err();
        assert!(err.to_string().contains("YYYY-MM-DD"));
    }
}
