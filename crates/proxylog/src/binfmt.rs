//! Compact binary log format.
//!
//! Six months of enterprise traffic is millions of records; the text
//! format of [`crate::format_line`] costs ~120 bytes per transaction. The
//! binary format here stores the same records in ~15 bytes using
//! delta-encoded timestamps and LEB128 varints — the kind of archival
//! format a proxy vendor ships benchmark corpora in.
//!
//! Layout: an 8-byte header (`b"PXLG"` magic, format version, flags) and a
//! varint record count, followed by one record per transaction:
//! timestamp delta (varint, seconds since the previous record), user,
//! device, site, category, subtype, application type (varints), and one
//! packed byte holding action (2 bits), scheme (1), reputation (2) and the
//! private-destination flag (1).

use crate::record::{DeviceId, HttpAction, Reputation, SiteId, Transaction, UriScheme, UserId};
use crate::taxonomy::{AppTypeId, CategoryId, SubtypeId};
use crate::time::Timestamp;
use std::io::{self, Read, Write};

const MAGIC: [u8; 4] = *b"PXLG";
const VERSION: u8 = 1;

/// Writes transactions in the binary format.
///
/// Transactions must be time-sorted (as [`crate::Dataset`] guarantees);
/// out-of-order input is rejected so the delta encoding stays valid.
///
/// # Errors
///
/// I/O errors from the writer, or `InvalidInput` if `transactions` is not
/// sorted by timestamp.
pub fn write_binary_log<W: Write>(mut writer: W, transactions: &[Transaction]) -> io::Result<()> {
    if let Some(pair) = transactions.windows(2).find(|w| w[0].timestamp > w[1].timestamp) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("transactions out of order at {}", pair[1].timestamp),
        ));
    }
    writer.write_all(&MAGIC)?;
    writer.write_all(&[VERSION, 0, 0, 0])?;
    write_varint(&mut writer, transactions.len() as u64)?;
    let mut previous = transactions.first().map_or(0, |tx| tx.timestamp.as_secs());
    // The first record stores its absolute timestamp (zig-zagged for
    // pre-epoch times), subsequent records a non-negative delta.
    if let Some(first) = transactions.first() {
        write_varint(&mut writer, zigzag(first.timestamp.as_secs()))?;
        write_record_body(&mut writer, first)?;
    }
    for tx in transactions.iter().skip(1) {
        let delta = (tx.timestamp.as_secs() - previous) as u64;
        previous = tx.timestamp.as_secs();
        write_varint(&mut writer, delta)?;
        write_record_body(&mut writer, tx)?;
    }
    Ok(())
}

fn write_record_body<W: Write>(writer: &mut W, tx: &Transaction) -> io::Result<()> {
    write_varint(writer, u64::from(tx.user.0))?;
    write_varint(writer, u64::from(tx.device.0))?;
    write_varint(writer, u64::from(tx.site.0))?;
    write_varint(writer, u64::from(tx.category.0))?;
    write_varint(writer, u64::from(tx.subtype.0))?;
    write_varint(writer, u64::from(tx.app_type.0))?;
    let packed: u8 = (tx.action.index() as u8)
        | ((tx.scheme.index() as u8) << 2)
        | ((reputation_code(tx.reputation)) << 3)
        | ((tx.private_destination as u8) << 5);
    writer.write_all(&[packed])
}

/// Largest record count honoured as an up-front `Vec` reservation. A
/// record is at least [`MIN_RECORD_BYTES`] on the wire, so a header
/// claiming more than this many records is either a multi-hundred-MiB
/// archive (which amortizes the incremental growth below) or an attack.
const PREALLOC_RECORD_LIMIT: usize = 1 << 16;

/// Minimum wire size of one record: a 1-byte timestamp varint, six 1-byte
/// id varints and the packed flag byte.
const MIN_RECORD_BYTES: u64 = 8;

/// Reads a binary log written by [`write_binary_log`].
///
/// The header's record count is attacker-controlled in any
/// untrusted-archive setting, so it is never trusted for allocation:
/// capacity is reserved for at most `PREALLOC_RECORD_LIMIT` (65,536)
/// records up front and then grows only as records actually parse out of
/// the stream. A count the remaining input cannot possibly satisfy (fewer
/// than `MIN_RECORD_BYTES` per claimed record) therefore fails with
/// `UnexpectedEof`/`InvalidData` after allocating memory proportional to
/// the *real* input, not to the claim.
///
/// # Errors
///
/// `InvalidData` for a bad magic/version, an absurd record count or a
/// corrupt record; `UnexpectedEof` for a truncated stream; other I/O
/// errors from the reader.
pub fn read_binary_log<R: Read>(mut reader: R) -> io::Result<Vec<Transaction>> {
    let mut header = [0u8; 8];
    reader.read_exact(&mut header)?;
    if header[0..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic, not a PXLG log"));
    }
    if header[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {}", header[4]),
        ));
    }
    let count = read_varint(&mut reader)?;
    // No input can hold more than u64::MAX / MIN_RECORD_BYTES records, so
    // a count beyond that is malformed by construction — reject it before
    // the read loop even starts.
    if count > u64::MAX / MIN_RECORD_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("record count {count} exceeds any representable input"),
        ));
    }
    let count = count as usize;
    let mut transactions = Vec::with_capacity(count.min(PREALLOC_RECORD_LIMIT));
    let mut previous = 0i64;
    for index in 0..count {
        let timestamp = if index == 0 {
            unzigzag(read_varint(&mut reader)?)
        } else {
            // Checked: a corrupt delta must surface as InvalidData, not
            // as integer overflow.
            i64::try_from(read_varint(&mut reader)?)
                .ok()
                .and_then(|delta| previous.checked_add(delta))
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "timestamp delta overflow")
                })?
        };
        previous = timestamp;
        let user = UserId(read_varint(&mut reader)? as u32);
        let device = DeviceId(read_varint(&mut reader)? as u32);
        let site = SiteId(read_varint(&mut reader)? as u32);
        let category = CategoryId(read_varint(&mut reader)? as u16);
        let subtype = SubtypeId(read_varint(&mut reader)? as u16);
        let app_type = AppTypeId(read_varint(&mut reader)? as u16);
        let mut packed = [0u8; 1];
        reader.read_exact(&mut packed)?;
        let packed = packed[0];
        let action = HttpAction::ALL
            .get((packed & 0b11) as usize)
            .copied()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad action code"))?;
        let scheme = if (packed >> 2) & 1 == 1 { UriScheme::Https } else { UriScheme::Http };
        let reputation = reputation_from_code((packed >> 3) & 0b11)?;
        let private_destination = (packed >> 5) & 1 == 1;
        transactions.push(Transaction {
            timestamp: Timestamp(timestamp),
            user,
            device,
            site,
            action,
            scheme,
            category,
            subtype,
            app_type,
            reputation,
            private_destination,
        });
    }
    Ok(transactions)
}

fn reputation_code(reputation: Reputation) -> u8 {
    match reputation {
        Reputation::Unverified => 0,
        Reputation::Minimal => 1,
        Reputation::Medium => 2,
        Reputation::High => 3,
    }
}

fn reputation_from_code(code: u8) -> io::Result<Reputation> {
    match code {
        0 => Ok(Reputation::Unverified),
        1 => Ok(Reputation::Minimal),
        2 => Ok(Reputation::Medium),
        3 => Ok(Reputation::High),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "bad reputation code")),
    }
}

fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

fn write_varint<W: Write>(writer: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return writer.write_all(&[byte]);
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(reader: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        let byte = byte[0];
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(secs: i64, user: u32) -> Transaction {
        Transaction {
            timestamp: Timestamp(secs),
            user: UserId(user),
            device: DeviceId(3),
            site: SiteId(812),
            action: HttpAction::Post,
            scheme: UriScheme::Https,
            category: CategoryId(42),
            subtype: SubtypeId(200),
            app_type: AppTypeId(399),
            reputation: Reputation::Medium,
            private_destination: true,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let txs: Vec<Transaction> =
            (0..100).map(|i| tx(1_432_000_000 + i * 37, (i % 7) as u32)).collect();
        let mut buffer = Vec::new();
        write_binary_log(&mut buffer, &txs).unwrap();
        let parsed = read_binary_log(buffer.as_slice()).unwrap();
        assert_eq!(parsed, txs);
    }

    #[test]
    fn round_trip_negative_first_timestamp() {
        let txs = vec![tx(-1000, 0), tx(-500, 1), tx(0, 2)];
        let mut buffer = Vec::new();
        write_binary_log(&mut buffer, &txs).unwrap();
        assert_eq!(read_binary_log(buffer.as_slice()).unwrap(), txs);
    }

    #[test]
    fn empty_log_round_trips() {
        let mut buffer = Vec::new();
        write_binary_log(&mut buffer, &[]).unwrap();
        assert!(read_binary_log(buffer.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn binary_is_much_smaller_than_text() {
        use crate::format::write_log;
        use crate::taxonomy::Taxonomy;
        let taxonomy = Taxonomy::paper_scale();
        let txs: Vec<Transaction> =
            (0..1000).map(|i| tx(1_432_000_000 + i, (i % 9) as u32)).collect();
        let mut binary = Vec::new();
        write_binary_log(&mut binary, &txs).unwrap();
        let mut text = Vec::new();
        write_log(&mut text, &txs, &taxonomy).unwrap();
        assert!(binary.len() * 4 < text.len(), "binary {} vs text {}", binary.len(), text.len());
    }

    #[test]
    fn rejects_unsorted_input() {
        let txs = vec![tx(100, 0), tx(50, 1)];
        let err = write_binary_log(&mut Vec::new(), &txs).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let err = read_binary_log(&b"NOPE\x01\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_binary_log(&b"PXLG\x09\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn rejects_truncated_stream() {
        let txs = vec![tx(1, 0), tx(2, 1)];
        let mut buffer = Vec::new();
        write_binary_log(&mut buffer, &txs).unwrap();
        buffer.truncate(buffer.len() - 3);
        assert!(read_binary_log(buffer.as_slice()).is_err());
    }

    /// Hardening: a header claiming billions of records backed by a
    /// handful of bytes must fail fast without a count-sized allocation.
    #[test]
    fn hardening_rejects_malformed_varint_count_without_huge_allocation() {
        for claimed in [u64::MAX, u64::MAX / 2, 1 << 40, 1 << 62] {
            let mut buffer = Vec::new();
            buffer.extend_from_slice(&MAGIC);
            buffer.extend_from_slice(&[VERSION, 0, 0, 0]);
            write_varint(&mut buffer, claimed).unwrap();
            buffer.extend_from_slice(&[0u8; 16]); // far fewer than `claimed` records
            let err = read_binary_log(buffer.as_slice()).unwrap_err();
            assert!(
                matches!(err.kind(), io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof),
                "count {claimed}: unexpected error {err}"
            );
        }
    }

    /// Hardening, fuzz-style: random truncations and byte flips of a valid
    /// log must error (or parse) but never panic or over-allocate. The
    /// mutation stream is seeded, so failures reproduce.
    #[test]
    fn hardening_fuzzed_inputs_never_panic() {
        let txs: Vec<Transaction> = (0..64).map(|i| tx(1_432_000_000 + i * 61, i as u32)).collect();
        let mut valid = Vec::new();
        write_binary_log(&mut valid, &txs).unwrap();

        // Deterministic xorshift so the test needs no RNG dependency.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let mut mutated = valid.clone();
            // Truncate to a random prefix half the time.
            if next() % 2 == 0 {
                mutated.truncate((next() % (valid.len() as u64 + 1)) as usize);
            }
            // Flip up to three random bytes (the count varint included).
            for _ in 0..(next() % 4) {
                if mutated.is_empty() {
                    break;
                }
                let at = (next() % mutated.len() as u64) as usize;
                mutated[at] = (next() & 0xff) as u8;
            }
            match read_binary_log(mutated.as_slice()) {
                Ok(parsed) => assert!(parsed.len() <= txs.len() + 1),
                Err(e) => assert!(
                    matches!(e.kind(), io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof),
                    "unexpected error kind: {e}"
                ),
            }
        }
    }

    #[test]
    fn varint_round_trip() {
        for value in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buffer = Vec::new();
            write_varint(&mut buffer, value).unwrap();
            assert_eq!(read_varint(&mut buffer.as_slice()).unwrap(), value);
        }
    }

    #[test]
    fn zigzag_round_trip() {
        for value in [0i64, 1, -1, 1000, -1000, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(value)), value);
        }
    }
}
