//! Corpus statistics (Sect. IV-A).
//!
//! The paper characterizes its benchmark with a handful of numbers: total
//! transactions (9,450,474), users (36) and devices (35), users per device
//! (~3 on average), devices per user (1–17), per-user transaction counts
//! (2,514–4,678,488, median 38,910 after filtering) and the population of
//! 1-minute windows (median 54 transactions, maximum 6,048). This module
//! computes the same summary over any [`Dataset`].

use crate::dataset::Dataset;
use crate::record::UserId;
use std::collections::BTreeMap;
use std::fmt;

/// Five-number-ish summary of a count distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountSummary {
    /// Smallest value.
    pub min: usize,
    /// Median value.
    pub median: usize,
    /// Arithmetic mean, rounded.
    pub mean: usize,
    /// Largest value.
    pub max: usize,
}

impl CountSummary {
    /// Summarizes a list of counts (all zeroes for an empty list).
    pub fn of(mut counts: Vec<usize>) -> Self {
        if counts.is_empty() {
            return Self::default();
        }
        counts.sort_unstable();
        let total: usize = counts.iter().sum();
        Self {
            min: counts[0],
            median: counts[counts.len() / 2],
            mean: total / counts.len(),
            max: counts[counts.len() - 1],
        }
    }
}

impl fmt::Display for CountSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {} / median {} / mean {} / max {}",
            self.min, self.median, self.mean, self.max
        )
    }
}

/// The Sect. IV-A corpus summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSummary {
    /// Total transactions.
    pub transactions: usize,
    /// Distinct users.
    pub users: usize,
    /// Distinct devices.
    pub devices: usize,
    /// Distribution of per-user transaction counts.
    pub transactions_per_user: CountSummary,
    /// Distribution of devices used per user.
    pub devices_per_user: CountSummary,
    /// Distribution of users seen per device.
    pub users_per_device: CountSummary,
    /// Monitoring duration in days (rounded up).
    pub duration_days: u32,
}

impl CorpusSummary {
    /// Computes the summary over a dataset.
    pub fn measure(dataset: &Dataset) -> Self {
        let per_user: Vec<usize> = dataset.user_counts().values().copied().collect();
        let devices_per_user: Vec<usize> = dataset.devices_per_user().values().copied().collect();
        let users_per_device: Vec<usize> = dataset.users_per_device().values().copied().collect();
        let duration_days = dataset
            .time_range()
            .map(|(first, last)| ((last - first) as f64 / 86_400.0).ceil() as u32)
            .unwrap_or(0);
        Self {
            transactions: dataset.len(),
            users: dataset.users().len(),
            devices: dataset.devices().len(),
            transactions_per_user: CountSummary::of(per_user),
            devices_per_user: CountSummary::of(devices_per_user),
            users_per_device: CountSummary::of(users_per_device),
            duration_days,
        }
    }
}

impl fmt::Display for CorpusSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} transactions over {} days", self.transactions, self.duration_days)?;
        writeln!(f, "{} users on {} devices", self.users, self.devices)?;
        writeln!(f, "transactions/user: {}", self.transactions_per_user)?;
        writeln!(f, "devices/user:      {}", self.devices_per_user)?;
        write!(f, "users/device:      {}", self.users_per_device)
    }
}

/// Population of fixed 60-second buckets per user: how many transactions
/// land in each non-empty minute (the paper reports a median of 54 and a
/// maximum of 6,048 for its corpus).
pub fn window_population(dataset: &Dataset, bucket_secs: i64) -> CountSummary {
    assert!(bucket_secs > 0, "bucket size must be positive");
    let mut buckets: BTreeMap<(UserId, i64), usize> = BTreeMap::new();
    for tx in dataset.transactions() {
        *buckets.entry((tx.user, tx.timestamp.as_secs().div_euclid(bucket_secs))).or_insert(0) += 1;
    }
    CountSummary::of(buckets.into_values().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DeviceId, HttpAction, Reputation, SiteId, Transaction, UriScheme};
    use crate::taxonomy::{AppTypeId, CategoryId, SubtypeId, Taxonomy};
    use crate::time::Timestamp;
    use std::sync::Arc;

    fn tx(secs: i64, user: u32, device: u32) -> Transaction {
        Transaction {
            timestamp: Timestamp(secs),
            user: UserId(user),
            device: DeviceId(device),
            site: SiteId(0),
            action: HttpAction::Get,
            scheme: UriScheme::Http,
            category: CategoryId(0),
            subtype: SubtypeId(0),
            app_type: AppTypeId(0),
            reputation: Reputation::Minimal,
            private_destination: false,
        }
    }

    fn dataset(txs: Vec<Transaction>) -> Dataset {
        Dataset::new(Arc::new(Taxonomy::with_sizes(2, 2, 2)), txs)
    }

    #[test]
    fn count_summary_basics() {
        let s = CountSummary::of(vec![5, 1, 3]);
        assert_eq!(s, CountSummary { min: 1, median: 3, mean: 3, max: 5 });
        assert_eq!(CountSummary::of(vec![]), CountSummary::default());
        assert!(s.to_string().contains("median 3"));
    }

    #[test]
    fn corpus_summary_counts() {
        let d = dataset(vec![
            tx(0, 0, 0),
            tx(86_400, 0, 1),
            tx(100, 1, 0),
            tx(200, 1, 0),
            tx(300, 1, 0),
        ]);
        let s = CorpusSummary::measure(&d);
        assert_eq!(s.transactions, 5);
        assert_eq!(s.users, 2);
        assert_eq!(s.devices, 2);
        assert_eq!(s.transactions_per_user.max, 3);
        assert_eq!(s.devices_per_user.max, 2);
        assert_eq!(s.users_per_device.max, 2);
        assert_eq!(s.duration_days, 1);
        assert!(s.to_string().contains("5 transactions"));
    }

    #[test]
    fn empty_dataset_summary() {
        let s = CorpusSummary::measure(&dataset(vec![]));
        assert_eq!(s.transactions, 0);
        assert_eq!(s.duration_days, 0);
    }

    #[test]
    fn window_population_buckets_per_user() {
        // Two users in the same minute bucket count separately.
        let d = dataset(vec![tx(0, 0, 0), tx(30, 0, 0), tx(10, 1, 0), tx(70, 0, 0)]);
        let s = window_population(&d, 60);
        // user 0: bucket 0 has 2, bucket 1 has 1; user 1: bucket 0 has 1.
        assert_eq!(s.max, 2);
        assert_eq!(s.min, 1);
    }

    #[test]
    #[should_panic(expected = "bucket size")]
    fn window_population_rejects_zero_bucket() {
        let _ = window_population(&dataset(vec![]), 0);
    }
}
