//! Web-transaction records and their field types.
//!
//! A *web transaction* is a sequence of HTTP requests and responses to a
//! single URL (paper, Sect. I); the secure proxy logs one record per
//! transaction, augmented with proprietary URL intelligence (category,
//! application type, reputation — Sect. III-A). [`Transaction`] mirrors the
//! fields the paper extracts from those logs.

use crate::taxonomy::{AppTypeId, CategoryId, SubtypeId};
use crate::time::Timestamp;
use std::fmt;
use std::str::FromStr;

macro_rules! display_id {
    ($ty:ident, $prefix:literal) => {
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "_{}"), self.0)
            }
        }

        impl FromStr for $ty {
            type Err = ParseFieldError;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                s.strip_prefix(concat!($prefix, "_"))
                    .and_then(|n| n.parse().ok())
                    .map($ty)
                    .ok_or_else(|| ParseFieldError { field: stringify!($ty), value: s.to_owned() })
            }
        }
    };
}

/// Identifier of a (synthetic) user, rendered as `user_<n>`.
///
/// # Examples
///
/// ```
/// use proxylog::UserId;
///
/// let user: UserId = "user_9".parse()?;
/// assert_eq!(user, UserId(9));
/// assert_eq!(user.to_string(), "user_9");
/// # Ok::<(), proxylog::ParseFieldError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UserId(pub u32);

display_id!(UserId, "user");

/// Identifier of a device (the paper keys "host-specific" windowing on the
/// source IP; devices play that role here), rendered as `device_<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceId(pub u32);

display_id!(DeviceId, "device");

/// Opaque identifier of a destination site, rendered as a domain name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site-{}.example.com", self.0)
    }
}

/// HTTP action of a transaction; the paper restricts the field to the four
/// values its dataset contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HttpAction {
    /// `GET` request.
    Get,
    /// `POST` request.
    Post,
    /// `CONNECT` tunnel establishment.
    Connect,
    /// `HEAD` request.
    Head,
}

impl HttpAction {
    /// The four actions, in the paper's order (GET, POST, CONNECT, HEAD).
    pub const ALL: [HttpAction; 4] =
        [HttpAction::Get, HttpAction::Post, HttpAction::Connect, HttpAction::Head];

    /// Canonical wire representation.
    pub fn as_str(self) -> &'static str {
        match self {
            HttpAction::Get => "GET",
            HttpAction::Post => "POST",
            HttpAction::Connect => "CONNECT",
            HttpAction::Head => "HEAD",
        }
    }

    /// Position in [`Self::ALL`], used for feature-column layout.
    pub fn index(self) -> usize {
        match self {
            HttpAction::Get => 0,
            HttpAction::Post => 1,
            HttpAction::Connect => 2,
            HttpAction::Head => 3,
        }
    }
}

impl fmt::Display for HttpAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for HttpAction {
    type Err = ParseFieldError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "GET" => Ok(HttpAction::Get),
            "POST" => Ok(HttpAction::Post),
            "CONNECT" => Ok(HttpAction::Connect),
            "HEAD" => Ok(HttpAction::Head),
            _ => Err(ParseFieldError { field: "HttpAction", value: s.to_owned() }),
        }
    }
}

/// URI scheme of the requested URL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum UriScheme {
    /// Plain-text HTTP.
    Http,
    /// TLS-protected HTTPS.
    Https,
}

impl UriScheme {
    /// Both schemes, in feature-column order.
    pub const ALL: [UriScheme; 2] = [UriScheme::Http, UriScheme::Https];

    /// Canonical wire representation.
    pub fn as_str(self) -> &'static str {
        match self {
            UriScheme::Http => "HTTP",
            UriScheme::Https => "HTTPS",
        }
    }

    /// Position in [`Self::ALL`], used for feature-column layout.
    pub fn index(self) -> usize {
        match self {
            UriScheme::Http => 0,
            UriScheme::Https => 1,
        }
    }
}

impl fmt::Display for UriScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for UriScheme {
    type Err = ParseFieldError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "HTTP" => Ok(UriScheme::Http),
            "HTTPS" => Ok(UriScheme::Https),
            _ => Err(ParseFieldError { field: "UriScheme", value: s.to_owned() }),
        }
    }
}

/// URL reputation assigned by the logging service: `Minimal`, `Medium` or
/// `High` risk when verified, or `Unverified`.
///
/// The paper maps this field to two features: a verified flag and a numeric
/// risk (`Minimal = 0`, `Medium = 0.5`, `High = 1`, with unverified URLs
/// defaulting to `0`); see [`Reputation::is_verified`] and
/// [`Reputation::risk_score`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Reputation {
    /// No verified reputation available.
    #[default]
    Unverified,
    /// Verified, minimal risk.
    Minimal,
    /// Verified, medium risk.
    Medium,
    /// Verified, high risk.
    High,
}

impl Reputation {
    /// All reputation values.
    pub const ALL: [Reputation; 4] =
        [Reputation::Unverified, Reputation::Minimal, Reputation::Medium, Reputation::High];

    /// Whether the logging service verified the URL's reputation.
    pub fn is_verified(self) -> bool {
        self != Reputation::Unverified
    }

    /// The paper's numeric risk mapping (Sect. III-B).
    pub fn risk_score(self) -> f64 {
        match self {
            Reputation::Unverified | Reputation::Minimal => 0.0,
            Reputation::Medium => 0.5,
            Reputation::High => 1.0,
        }
    }

    /// Canonical wire representation.
    pub fn as_str(self) -> &'static str {
        match self {
            Reputation::Unverified => "Unverified",
            Reputation::Minimal => "Minimal",
            Reputation::Medium => "Medium",
            Reputation::High => "High",
        }
    }
}

impl fmt::Display for Reputation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Reputation {
    type Err = ParseFieldError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Unverified" => Ok(Reputation::Unverified),
            "Minimal" => Ok(Reputation::Minimal),
            "Medium" => Ok(Reputation::Medium),
            "High" => Ok(Reputation::High),
            _ => Err(ParseFieldError { field: "Reputation", value: s.to_owned() }),
        }
    }
}

/// Error parsing one field of a log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFieldError {
    /// Type name of the field that failed to parse.
    pub field: &'static str,
    /// The offending input.
    pub value: String,
}

impl fmt::Display for ParseFieldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} value {:?}", self.field, self.value)
    }
}

impl std::error::Error for ParseFieldError {}

/// One logged web transaction, with the proxy's augmentation fields.
///
/// This is a passive data record; taxonomy-indexed fields ([`CategoryId`],
/// [`SubtypeId`], [`AppTypeId`]) resolve to names through a
/// [`Taxonomy`](crate::Taxonomy).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Transaction {
    /// When the transaction was logged.
    pub timestamp: Timestamp,
    /// The authenticated user who performed it.
    pub user: UserId,
    /// The device (source host) it originated from.
    pub device: DeviceId,
    /// Destination site.
    pub site: SiteId,
    /// HTTP action.
    pub action: HttpAction,
    /// URI scheme.
    pub scheme: UriScheme,
    /// Website category of the target URL.
    pub category: CategoryId,
    /// Media subtype of the target resource (supertype derivable through
    /// the taxonomy).
    pub subtype: SubtypeId,
    /// Application running on the target resource.
    pub app_type: AppTypeId,
    /// URL reputation.
    pub reputation: Reputation,
    /// Whether the destination is on the internal (private) network.
    pub private_destination: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_round_trip() {
        let user: UserId = "user_17".parse().unwrap();
        assert_eq!(user, UserId(17));
        assert_eq!(user.to_string(), "user_17");
        assert!("user17".parse::<UserId>().is_err());
        assert!("device_17".parse::<UserId>().is_err());
    }

    #[test]
    fn device_id_round_trip() {
        let device: DeviceId = "device_3".parse().unwrap();
        assert_eq!(device.to_string(), "device_3");
    }

    #[test]
    fn site_id_renders_as_domain() {
        assert_eq!(SiteId(42).to_string(), "site-42.example.com");
    }

    #[test]
    fn http_action_round_trip_and_order() {
        for (i, action) in HttpAction::ALL.into_iter().enumerate() {
            assert_eq!(action.index(), i);
            assert_eq!(action.as_str().parse::<HttpAction>().unwrap(), action);
        }
        assert!("PUT".parse::<HttpAction>().is_err());
    }

    #[test]
    fn scheme_round_trip() {
        for scheme in UriScheme::ALL {
            assert_eq!(scheme.as_str().parse::<UriScheme>().unwrap(), scheme);
        }
        assert!("ftp".parse::<UriScheme>().is_err());
    }

    #[test]
    fn reputation_mapping_matches_paper() {
        assert!(!Reputation::Unverified.is_verified());
        assert!(Reputation::Minimal.is_verified());
        assert_eq!(Reputation::Unverified.risk_score(), 0.0);
        assert_eq!(Reputation::Minimal.risk_score(), 0.0);
        assert_eq!(Reputation::Medium.risk_score(), 0.5);
        assert_eq!(Reputation::High.risk_score(), 1.0);
    }

    #[test]
    fn reputation_round_trip() {
        for rep in Reputation::ALL {
            assert_eq!(rep.as_str().parse::<Reputation>().unwrap(), rep);
        }
        assert!("Critical".parse::<Reputation>().is_err());
    }

    #[test]
    fn parse_field_error_is_descriptive() {
        let err = "bogus".parse::<HttpAction>().unwrap_err();
        assert!(err.to_string().contains("HttpAction"));
        assert!(err.to_string().contains("bogus"));
    }
}
