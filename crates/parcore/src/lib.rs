//! Dependency-free parallel execution primitives.
//!
//! This crate hosts the workspace's shared fan-out machinery: a
//! work-stealing pool that runs *chains* of dependent tasks
//! ([`run_chains`]), and order-preserving parallel maps built on plain
//! `std::thread::scope` ([`parallel_map`], [`parallel_map_workers`],
//! [`stealing_map_mut`]). It was extracted from `webprofiler::schedule`
//! (which still re-exports it) so that `tracegen` and the benchmark
//! binaries can use the same pool without a dependency cycle through the
//! modeling crate.
//!
//! # Chains
//!
//! Workloads here decompose into independent *chains*: sequences of tasks
//! where each task may produce a successor that must run after it (a
//! grid-search cell seeding the next regularization, a user's sessions
//! replayed in order against that user's RNG). Chains vary wildly in cost,
//! so a static partition over threads leaves workers idle. [`run_chains`]
//! runs them on a fixed pool of workers with per-worker deques and work
//! stealing, built on `std::sync` only (no external dependencies).
//!
//! Each worker owns a deque: it pushes and pops its own tasks LIFO
//! (keeping a chain's successor hot in cache on the worker that produced
//! its predecessor) and steals from other workers FIFO (taking the oldest
//! — typically largest remaining — task). Termination uses a shared
//! pending-task counter: a worker pushes a chain's successor *before*
//! decrementing the counter, so the count never reaches zero while work
//! remains.
//!
//! # Examples
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! // Three countdown chains totalling 9 steps, on 2 workers.
//! let sum = AtomicU64::new(0);
//! let stats = parcore::run_chains(vec![3u32, 1, 5], 2, |n| {
//!     sum.fetch_add(1, Ordering::Relaxed);
//!     (n > 1).then(|| n - 1)
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 9);
//! assert_eq!(stats.executed, 9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counters describing one [`run_chains`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Number of tasks executed across all workers (chain steps, not chains).
    pub executed: u64,
    /// Number of tasks a worker obtained from another worker's deque.
    pub steals: u64,
    /// Number of workers the pool ran with (1 means sequential fast path).
    pub workers: usize,
}

impl StealStats {
    /// Accumulates another run's counters into this one (workers takes the
    /// maximum, so a stats object summed over stages reports the widest
    /// fan-out used).
    pub fn merge(&mut self, other: StealStats) {
        self.executed += other.executed;
        self.steals += other.steals;
        self.workers = self.workers.max(other.workers);
    }
}

struct Pool<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Tasks pushed but not yet completed. A step that yields a successor
    /// pushes it before decrementing, keeping the count positive while any
    /// chain still has work.
    pending: AtomicUsize,
    steals: AtomicUsize,
    executed: AtomicUsize,
}

impl<T> Pool<T> {
    fn new(workers: usize, seeds: Vec<T>) -> Self {
        let deques: Vec<Mutex<VecDeque<T>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let pending = seeds.len();
        for (i, seed) in seeds.into_iter().enumerate() {
            deques[i % workers].lock().unwrap().push_back(seed);
        }
        Pool {
            deques,
            pending: AtomicUsize::new(pending),
            steals: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
        }
    }

    /// Pop from our own deque (LIFO), falling back to stealing the oldest
    /// task from another worker's deque (FIFO), scanning round-robin.
    fn obtain(&self, me: usize) -> Option<T> {
        if let Some(task) = self.deques[me].lock().unwrap().pop_back() {
            return Some(task);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(task) = self.deques[victim].lock().unwrap().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn work(&self, me: usize, step: &(impl Fn(T) -> Option<T> + Sync)) {
        loop {
            match self.obtain(me) {
                Some(task) => {
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    match step(task) {
                        Some(successor) => {
                            // Push before decrement/increment bookkeeping is
                            // needed: the successor replaces the completed
                            // task one-for-one, so `pending` is unchanged.
                            self.deques[me].lock().unwrap().push_back(successor);
                        }
                        None => {
                            self.pending.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                }
                None => {
                    if self.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Run every chain to completion on `n_workers` threads with work stealing.
///
/// Each seed in `seeds` starts a chain. `step` executes one task and returns
/// the chain's next task, or `None` when the chain is finished. With
/// `n_workers <= 1` (or a single seed) the chains run sequentially on the
/// calling thread — same results, no thread overhead.
pub fn run_chains<T, F>(seeds: Vec<T>, n_workers: usize, step: F) -> StealStats
where
    T: Send,
    F: Fn(T) -> Option<T> + Sync,
{
    if seeds.is_empty() {
        return StealStats { executed: 0, steals: 0, workers: n_workers.max(1) };
    }
    if n_workers <= 1 || seeds.len() == 1 {
        let mut executed = 0u64;
        for seed in seeds {
            let mut task = Some(seed);
            while let Some(t) = task.take() {
                executed += 1;
                task = step(t);
            }
        }
        return StealStats { executed, steals: 0, workers: 1 };
    }

    let workers = n_workers.min(seeds.len());
    let pool = Pool::new(workers, seeds);
    std::thread::scope(|scope| {
        for me in 1..workers {
            let pool = &pool;
            let step = &step;
            scope.spawn(move || pool.work(me, step));
        }
        pool.work(0, &step);
    });
    StealStats {
        executed: pool.executed.load(Ordering::Relaxed) as u64,
        steals: pool.steals.load(Ordering::Relaxed) as u64,
        workers,
    }
}

/// Number of workers to use when the caller didn't pin one.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on up to [`default_workers`] threads; result order
/// matches input order.
///
/// Items are split into one contiguous chunk per available core, so the
/// overhead is a handful of thread spawns per call, nothing per item. Falls
/// back to a plain sequential map for single-item inputs or single-core
/// machines. Use [`stealing_map_mut`] instead when per-item cost is very
/// uneven (heavy users next to light ones) and load balancing matters more
/// than spawn overhead.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_workers(items, default_workers(), f)
}

/// [`parallel_map`] with an explicit worker count (1 runs sequentially on
/// the calling thread).
pub fn parallel_map_workers<T, U, F>(items: &[T], n_workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() <= 1 || n_workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let chunk = items.len().div_ceil(n_workers);
    std::thread::scope(|scope| {
        for (item_chunk, result_chunk) in items.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(|| {
                for (item, slot) in item_chunk.iter().zip(result_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// Work-stealing map over mutable items: every item is its own single-task
/// chain on the stealing pool, so expensive items migrate to idle workers
/// instead of pinning their chunk-mates behind them. `f` receives the
/// item's index and exclusive access to the item; result order matches
/// input order.
///
/// This is the right shape when tasks own mutable state that must survive
/// the call (per-user RNGs advanced by trace emission): mutate the item in
/// place and return the produced value.
pub fn stealing_map_mut<T, U, F>(items: &mut [T], n_workers: usize, f: F) -> (Vec<U>, StealStats)
where
    T: Send,
    U: Send,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let seeds: Vec<(usize, &mut T, &mut Option<U>)> = items
        .iter_mut()
        .zip(slots.iter_mut())
        .enumerate()
        .map(|(i, (item, slot))| (i, item, slot))
        .collect();
    let stats = run_chains(seeds, n_workers, |(i, item, slot)| {
        *slot = Some(f(i, item));
        None
    });
    (slots.into_iter().map(|s| s.expect("all slots filled")).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A chain task: counts down `remaining` steps, accumulating into `sum`.
    struct Countdown<'a> {
        remaining: u32,
        sum: &'a AtomicU64,
    }

    fn run_countdowns(lengths: &[u32], workers: usize) -> (u64, StealStats) {
        let sum = AtomicU64::new(0);
        let seeds: Vec<Countdown<'_>> =
            lengths.iter().map(|&n| Countdown { remaining: n, sum: &sum }).collect();
        let stats = run_chains(seeds, workers, |task| {
            task.sum.fetch_add(1, Ordering::Relaxed);
            if task.remaining > 1 {
                Some(Countdown { remaining: task.remaining - 1, sum: task.sum })
            } else {
                None
            }
        });
        (sum.load(Ordering::Relaxed), stats)
    }

    #[test]
    fn sequential_path_executes_every_step() {
        let (sum, stats) = run_countdowns(&[3, 1, 5], 1);
        assert_eq!(sum, 9);
        assert_eq!(stats.executed, 9);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn parallel_path_executes_every_step() {
        let lengths: Vec<u32> = (1..=40).map(|i| i % 7 + 1).collect();
        let expected: u64 = lengths.iter().map(|&n| n as u64).sum();
        let (sum, stats) = run_countdowns(&lengths, 4);
        assert_eq!(sum, expected);
        assert_eq!(stats.executed, expected);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn worker_count_is_capped_by_seed_count() {
        let (sum, stats) = run_countdowns(&[2, 2], 8);
        assert_eq!(sum, 4);
        assert!(stats.workers <= 2);
    }

    #[test]
    fn empty_seed_list_is_a_no_op() {
        let stats = run_chains(Vec::<u8>::new(), 4, |_| None);
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn uneven_chains_complete_under_contention() {
        // One long chain plus many short ones: the long chain's worker keeps
        // its successors local while the others drain the short chains.
        let mut lengths = vec![64u32];
        lengths.extend(std::iter::repeat_n(1, 31));
        let (sum, stats) = run_countdowns(&lengths, 8);
        assert_eq!(sum, 64 + 31);
        assert_eq!(stats.executed, 64 + 31);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_workers_matches_sequential_at_any_width() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 300] {
            assert_eq!(parallel_map_workers(&items, workers, |&x| x * x), expected);
        }
    }

    #[test]
    fn stealing_map_mut_mutates_in_place_and_preserves_order() {
        for workers in [1, 2, 8] {
            let mut items: Vec<u64> = (0..100).collect();
            let (squares, stats) = stealing_map_mut(&mut items, workers, |i, item| {
                *item += 1;
                (i as u64) * (i as u64)
            });
            assert_eq!(items, (1..=100).collect::<Vec<u64>>());
            assert_eq!(squares, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.executed, 100);
        }
    }

    #[test]
    fn steal_stats_merge_accumulates() {
        let mut a = StealStats { executed: 5, steals: 1, workers: 2 };
        a.merge(StealStats { executed: 7, steals: 0, workers: 4 });
        assert_eq!(a, StealStats { executed: 12, steals: 1, workers: 4 });
    }
}
