//! The engine's batched streaming pipeline must reproduce the offline
//! identifier exactly: replaying a finished corpus yields bit-identical
//! window feature vectors, acceptance sets, and votes.

use ocsvm::Kernel;
use proxylog::{Dataset, DeviceId};
use std::collections::BTreeMap;
use streamid::{EngineConfig, StreamEngine, WindowDecision};
use tracegen::{Scenario, TraceGenerator};
use webprofiler::{
    consecutive_window_vote, identify_on_device, ModelKind, ProfileTrainer, UserProfile,
    Vocabulary, WindowAggregator, WindowConfig, WindowKey,
};

fn replay(
    profiles: &BTreeMap<proxylog::UserId, UserProfile>,
    vocab: &Vocabulary,
    dataset: &Dataset,
    config: EngineConfig,
) -> BTreeMap<DeviceId, Vec<WindowDecision>> {
    let mut engine = StreamEngine::new(profiles, vocab, config);
    let mut decisions = Vec::new();
    // The global transaction stream interleaves devices; the engine
    // demultiplexes per device internally.
    for tx in dataset.transactions() {
        decisions.extend(engine.observe(*tx));
    }
    decisions.extend(engine.finish());
    assert_eq!(engine.stats().windows_shed, 0, "no backpressure in this replay");
    assert_eq!(engine.stats().late_dropped, 0, "the corpus is time-sorted");
    let mut by_device: BTreeMap<DeviceId, Vec<WindowDecision>> = BTreeMap::new();
    for decision in decisions {
        by_device.entry(decision.device).or_default().push(decision);
    }
    by_device
}

fn assert_matches_offline(
    profiles: &BTreeMap<proxylog::UserId, UserProfile>,
    vocab: &Vocabulary,
    dataset: &Dataset,
    engine_config: EngineConfig,
) {
    let by_device = replay(profiles, vocab, dataset, engine_config);
    let aggregator = WindowAggregator::new(vocab, engine_config.window);
    assert_eq!(by_device.len(), dataset.devices().len());
    for device in dataset.devices() {
        let streamed = &by_device[&device];
        let offline = identify_on_device(profiles, vocab, dataset, device, engine_config.window);
        let votes = consecutive_window_vote(&offline, engine_config.vote_k);
        let windows = aggregator.device_windows(dataset, device);
        assert_eq!(streamed.len(), offline.len(), "window count on {device:?}");
        for (j, decision) in streamed.iter().enumerate() {
            assert_eq!(decision.start, offline[j].start, "start of window {j} on {device:?}");
            assert_eq!(
                decision.accepted_by, offline[j].accepted_by,
                "acceptance set of window {j} on {device:?}"
            );
            assert_eq!(decision.actual_users, offline[j].actual_users);
            assert_eq!(decision.transaction_count, offline[j].transaction_count);
            assert_eq!(decision.vote, votes[j].1, "vote of window {j} on {device:?}");
            // Feature vectors are bit-identical to offline aggregation.
            assert_eq!(windows[j].key, WindowKey::Device(device));
            assert_eq!(decision.features, windows[j].features);
        }
    }
}

#[test]
fn streaming_matches_offline_identification_default_profiles() {
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let (profiles, _) = ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
    // Several batch sizes, including one forcing many partial interleavings
    // and one big enough that only finish() ever scores.
    for batch_windows in [1, 7, 64, 100_000] {
        let config = EngineConfig { batch_windows, ..EngineConfig::default() };
        assert_matches_offline(&profiles, &vocab, &dataset, config);
    }
}

#[test]
fn streaming_matches_offline_identification_rbf_ocsvm() {
    // The RBF ν-OC-SVM exercises the CrossGram batched path (the default
    // profiles collapse to the linear GEMV path).
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let (profiles, _) = ProfileTrainer::new(&vocab)
        .kind(ModelKind::OcSvm)
        .kernel(Kernel::Rbf { gamma: 0.5 })
        .regularization(0.1)
        .max_training_windows(120)
        .train_all(&dataset);
    let config = EngineConfig { batch_windows: 16, vote_k: 5, ..EngineConfig::default() };
    assert_matches_offline(&profiles, &vocab, &dataset, config);
}

#[test]
fn streaming_matches_offline_with_non_default_window_grid() {
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let window = WindowConfig::new(120, 40).unwrap();
    let (profiles, _) =
        ProfileTrainer::new(&vocab).window(window).max_training_windows(150).train_all(&dataset);
    let config = EngineConfig { window, batch_windows: 32, ..EngineConfig::default() };
    assert_matches_offline(&profiles, &vocab, &dataset, config);
}
