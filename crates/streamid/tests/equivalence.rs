//! The engine's batched streaming pipeline must reproduce the offline
//! identifier exactly: replaying a finished corpus yields bit-identical
//! window feature vectors, acceptance sets, and votes.

use ocsvm::Kernel;
use proxylog::{Dataset, DeviceId};
use std::collections::BTreeMap;
use streamid::{EngineConfig, PrefilterConfig, StreamEngine, WindowDecision};
use tracegen::{Scenario, TraceGenerator};
use webprofiler::{
    consecutive_window_vote, identify_on_device, ModelKind, ProfileTrainer, UserProfile,
    Vocabulary, WindowAggregator, WindowConfig, WindowKey,
};

fn replay(
    profiles: &BTreeMap<proxylog::UserId, UserProfile>,
    vocab: &Vocabulary,
    dataset: &Dataset,
    config: EngineConfig,
) -> BTreeMap<DeviceId, Vec<WindowDecision>> {
    let mut engine = StreamEngine::new(profiles, vocab, config);
    let mut decisions = Vec::new();
    // The global transaction stream interleaves devices; the engine
    // demultiplexes per device internally.
    for tx in dataset.transactions() {
        decisions.extend(engine.observe(*tx));
    }
    decisions.extend(engine.finish());
    assert_eq!(engine.stats().windows_shed, 0, "no backpressure in this replay");
    assert_eq!(engine.stats().late_dropped, 0, "the corpus is time-sorted");
    let mut by_device: BTreeMap<DeviceId, Vec<WindowDecision>> = BTreeMap::new();
    for decision in decisions {
        by_device.entry(decision.device).or_default().push(decision);
    }
    by_device
}

fn assert_matches_offline(
    profiles: &BTreeMap<proxylog::UserId, UserProfile>,
    vocab: &Vocabulary,
    dataset: &Dataset,
    engine_config: EngineConfig,
) {
    let by_device = replay(profiles, vocab, dataset, engine_config);
    let aggregator = WindowAggregator::new(vocab, engine_config.window);
    assert_eq!(by_device.len(), dataset.devices().len());
    for device in dataset.devices() {
        let streamed = &by_device[&device];
        let offline = identify_on_device(profiles, vocab, dataset, device, engine_config.window);
        let votes = consecutive_window_vote(&offline, engine_config.vote_k);
        let windows = aggregator.device_windows(dataset, device);
        assert_eq!(streamed.len(), offline.len(), "window count on {device:?}");
        for (j, decision) in streamed.iter().enumerate() {
            assert_eq!(decision.start, offline[j].start, "start of window {j} on {device:?}");
            assert_eq!(
                decision.accepted_by, offline[j].accepted_by,
                "acceptance set of window {j} on {device:?}"
            );
            assert_eq!(decision.actual_users, offline[j].actual_users);
            assert_eq!(decision.transaction_count, offline[j].transaction_count);
            assert_eq!(decision.vote, votes[j].1, "vote of window {j} on {device:?}");
            // Feature vectors are bit-identical to offline aggregation.
            assert_eq!(windows[j].key, WindowKey::Device(device));
            assert_eq!(decision.features, windows[j].features);
        }
    }
}

fn replay_prefiltered(
    profiles: &BTreeMap<proxylog::UserId, UserProfile>,
    vocab: &Vocabulary,
    dataset: &Dataset,
    config: EngineConfig,
    prefilter: PrefilterConfig,
) -> (BTreeMap<DeviceId, Vec<WindowDecision>>, streamid::EngineStats) {
    let mut engine = StreamEngine::new(profiles, vocab, config).with_prefilter(prefilter);
    let mut decisions = Vec::new();
    for tx in dataset.transactions() {
        decisions.extend(engine.observe(*tx));
    }
    decisions.extend(engine.finish());
    let stats = engine.stats();
    let mut by_device: BTreeMap<DeviceId, Vec<WindowDecision>> = BTreeMap::new();
    for decision in decisions {
        by_device.entry(decision.device).or_default().push(decision);
    }
    (by_device, stats)
}

fn assert_same_decisions(
    exhaustive: &BTreeMap<DeviceId, Vec<WindowDecision>>,
    prefiltered: &BTreeMap<DeviceId, Vec<WindowDecision>>,
) {
    assert_eq!(exhaustive.len(), prefiltered.len());
    for (device, a) in exhaustive {
        let b = &prefiltered[device];
        assert_eq!(a.len(), b.len(), "window count on {device:?}");
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.start, y.start, "start of window {j} on {device:?}");
            assert_eq!(x.accepted_by, y.accepted_by, "acceptance set of window {j} on {device:?}");
            assert_eq!(x.vote, y.vote, "vote of window {j} on {device:?}");
            assert_eq!(x.features, y.features);
        }
    }
}

#[test]
fn prefiltered_streaming_matches_exhaustive_on_a_population_larger_than_k() {
    // 40 enrolled users against the default shortlist of 16: most of the
    // population is pruned per window (some windows are accepted by more
    // than 16 users), yet all-linear profiles keep the accepted sets
    // bit-identical — the shortlist's margin guard retains every
    // potentially-accepting linear user beyond the top-k budget.
    let dataset = TraceGenerator::new(Scenario::scaled(40, 12, 1)).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let (profiles, _) = ProfileTrainer::new(&vocab).max_training_windows(100).train_all(&dataset);
    assert!(profiles.len() > PrefilterConfig::DEFAULT_TOP_K, "population must exceed k");
    let config = EngineConfig { batch_windows: 32, ..EngineConfig::default() };
    let exhaustive = replay(&profiles, &vocab, &dataset, config);
    let (prefiltered, stats) = replay_prefiltered(
        &profiles,
        &vocab,
        &dataset,
        config,
        PrefilterConfig { verify: true, ..PrefilterConfig::default() },
    );
    assert_same_decisions(&exhaustive, &prefiltered);
    assert!(stats.prefilter_windows > 0);
    assert_eq!(stats.prefilter_mismatches, 0, "verify mode agrees window-for-window");
    // The shortlist really prunes: fewer candidates than exhaustive work.
    assert!(
        stats.prefilter_candidates < stats.prefilter_windows * profiles.len() as u64,
        "{} candidates over {} windows never pruned anyone",
        stats.prefilter_candidates,
        stats.prefilter_windows,
    );
}

#[test]
fn prefiltered_streaming_matches_exhaustive_for_rbf_with_covering_k() {
    // Non-linear profiles only get the coverage-sketch heuristic, so
    // equivalence is guaranteed by a shortlist covering the population.
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let (profiles, _) = ProfileTrainer::new(&vocab)
        .kind(ModelKind::OcSvm)
        .kernel(Kernel::Rbf { gamma: 0.5 })
        .regularization(0.1)
        .max_training_windows(120)
        .train_all(&dataset);
    let config = EngineConfig { batch_windows: 16, ..EngineConfig::default() };
    let exhaustive = replay(&profiles, &vocab, &dataset, config);
    let (prefiltered, stats) = replay_prefiltered(
        &profiles,
        &vocab,
        &dataset,
        config,
        PrefilterConfig { top_k: profiles.len(), verify: true },
    );
    assert_same_decisions(&exhaustive, &prefiltered);
    assert_eq!(stats.prefilter_mismatches, 0);
}

#[test]
fn streaming_matches_offline_identification_default_profiles() {
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let (profiles, _) = ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
    // Several batch sizes, including one forcing many partial interleavings
    // and one big enough that only finish() ever scores.
    for batch_windows in [1, 7, 64, 100_000] {
        let config = EngineConfig { batch_windows, ..EngineConfig::default() };
        assert_matches_offline(&profiles, &vocab, &dataset, config);
    }
}

#[test]
fn streaming_matches_offline_identification_rbf_ocsvm() {
    // The RBF ν-OC-SVM exercises the CrossGram batched path (the default
    // profiles collapse to the linear GEMV path).
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let (profiles, _) = ProfileTrainer::new(&vocab)
        .kind(ModelKind::OcSvm)
        .kernel(Kernel::Rbf { gamma: 0.5 })
        .regularization(0.1)
        .max_training_windows(120)
        .train_all(&dataset);
    let config = EngineConfig { batch_windows: 16, vote_k: 5, ..EngineConfig::default() };
    assert_matches_offline(&profiles, &vocab, &dataset, config);
}

#[test]
fn f32_scoring_decisions_agree_with_f64_default_profiles() {
    // The opt-in single-precision mode is not bit-identical in decision
    // *values*, but its accept/reject *decisions* are pinned to agree
    // with the f64 path on the equivalence corpora: profile margins dwarf
    // single-precision rounding here, and a disagreement would mean the
    // f32 kernels drifted beyond rounding (a real bug, not noise).
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let (profiles, _) = ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
    for batch_windows in [1, 16, 64] {
        let f64_config = EngineConfig { batch_windows, ..EngineConfig::default() };
        let f32_config = EngineConfig { f32_scoring: true, ..f64_config };
        let baseline = replay(&profiles, &vocab, &dataset, f64_config);
        let single = replay(&profiles, &vocab, &dataset, f32_config);
        assert_same_decisions(&baseline, &single);
    }
}

#[test]
fn f32_scoring_decisions_agree_with_f64_rbf_ocsvm() {
    // Same pin through the non-linear path: per-SV f32 kernel rows
    // (bypassing the kernel-row arena) instead of the collapsed GEMV.
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let (profiles, _) = ProfileTrainer::new(&vocab)
        .kind(ModelKind::OcSvm)
        .kernel(Kernel::Rbf { gamma: 0.5 })
        .regularization(0.1)
        .max_training_windows(120)
        .train_all(&dataset);
    let f64_config = EngineConfig { batch_windows: 16, ..EngineConfig::default() };
    let f32_config = EngineConfig { f32_scoring: true, ..f64_config };
    let baseline = replay(&profiles, &vocab, &dataset, f64_config);
    let single = replay(&profiles, &vocab, &dataset, f32_config);
    assert_same_decisions(&baseline, &single);
}

#[test]
fn streaming_matches_offline_with_non_default_window_grid() {
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let window = WindowConfig::new(120, 40).unwrap();
    let (profiles, _) =
        ProfileTrainer::new(&vocab).window(window).max_training_windows(150).train_all(&dataset);
    let config = EngineConfig { window, batch_windows: 32, ..EngineConfig::default() };
    assert_matches_offline(&profiles, &vocab, &dataset, config);
}
