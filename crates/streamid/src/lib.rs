//! Online streaming user identification.
//!
//! The paper's end goal (Sect. V-C) is *continuous* identification on a
//! live secure-proxy feed. The `webprofiler` crate replays finished
//! datasets — [`webprofiler::identify_on_device`] scores one window at a
//! time over a fully materialized [`proxylog::Dataset`]. This crate is the
//! online counterpart: a [`StreamEngine`] consumes an unbounded,
//! time-ordered stream of [`proxylog::Transaction`]s (from a file tail via
//! [`proxylog::LogTail`], an in-process channel, or a `tracegen` corpus
//! replayed live), maintains incremental per-device window state, and
//! scores *micro-batches* of closed windows against every candidate
//! profile at once — one kernel-row materialization per support vector per
//! batch through a shared `CrossGram`, and one dense weight-vector GEMV
//! per batch for linear models — instead of one window at a time.
//!
//! The pipeline per transaction:
//!
//! 1. **Window state** — each device owns a [`webprofiler::WindowStream`]
//!    with watermark-based closing: windows close once event time moves
//!    `lateness` seconds past their end, so moderately out-of-order input
//!    still lands in its windows, and too-late stragglers are dropped and
//!    counted (never silently).
//! 2. **Batched scoring** — closed windows queue up; when
//!    [`EngineConfig::batch_windows`] have accumulated (or on
//!    [`StreamEngine::drain`]/[`StreamEngine::finish`]) the whole batch is
//!    scored against all profiles in parallel, amortizing kernel work
//!    across the batch. Decision values are bit-identical to per-window
//!    scoring, so replaying a finished corpus reproduces
//!    [`webprofiler::identify_on_device`] exactly.
//! 3. **Voting** — each scored window folds into its device's trailing
//!    [`webprofiler::majority_vote`] (the same rule as
//!    [`webprofiler::consecutive_window_vote`]), emitting one
//!    [`WindowDecision`] per window.
//!
//! Memory is bounded: at most [`EngineConfig::max_pending_per_device`]
//! closed windows may wait for scoring per device; beyond that the oldest
//! are shed (counted in [`EngineStats::windows_shed`]).
//!
//! At large populations exhaustive scoring is the bottleneck: every
//! closed window visits every enrolled profile. [`StreamEngine::with_prefilter`]
//! switches scoring to a two-stage path — a cheap
//! [`webprofiler::CandidateIndex`] shortlist picks the top
//! [`PrefilterConfig::top_k`] candidate users per window, and only the
//! shortlist is scored exactly. With all-linear profiles any window whose
//! accepted set fits in `top_k` is decided bit-identically to exhaustive
//! scoring; [`PrefilterConfig::verify`] cross-checks that claim online.
//!
//! Profiles come from wherever [`webprofiler::UserProfile`]s are trained —
//! or from a [`ModelStore`] directory of persisted profiles. Persisted
//! models keep their support vectors' training indices (ocsvm persist v2),
//! so a restarted engine retains shared-row scoring without retraining.
//!
//! # Quick start
//!
//! ```
//! use streamid::{EngineConfig, StreamEngine};
//! use tracegen::{Scenario, TraceGenerator};
//! use webprofiler::{ProfileTrainer, Vocabulary};
//!
//! let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
//! let vocab = Vocabulary::new(dataset.taxonomy().clone());
//! let (profiles, _) = ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
//!
//! let mut engine = StreamEngine::new(&profiles, &vocab, EngineConfig::default());
//! let mut decisions = Vec::new();
//! for tx in dataset.transactions() {
//!     decisions.extend(engine.observe(*tx)); // unbounded stream in, decisions out
//! }
//! decisions.extend(engine.finish());
//! assert!(!decisions.is_empty());
//! println!("{}", engine.stats());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
mod scorecard;
mod store;
#[cfg(feature = "tracelog")]
mod telemetry;

pub use config::{EngineConfig, PrefilterConfig};
pub use engine::{EngineStats, StreamEngine, WindowDecision};
pub use scorecard::{LabeledInterval, ScenarioReport, ScenarioTelemetry};
pub use store::{LoadIssue, ModelStore, StoreLoadError};
#[cfg(feature = "tracelog")]
pub use telemetry::TraceEvent;
