//! Feature-gated structured event log (`tracelog`).
//!
//! A zero-dependency stand-in for a `tracing` subscriber: the engine
//! appends one [`TraceEvent`] per notable action to an in-memory log the
//! embedder (e.g. the replay benchmark) reads back for its summary. Off by
//! default; enabling the `tracelog` feature adds the log without changing
//! any decision.

use proxylog::DeviceId;

/// One structured engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A device was seen for the first time and its window stream opened.
    StreamOpened {
        /// The new device.
        device: DeviceId,
    },
    /// Windows closed on a device (event time passed their watermark) and
    /// entered the scoring queue.
    WindowsClosed {
        /// The device whose windows closed.
        device: DeviceId,
        /// How many closed at once.
        count: usize,
    },
    /// Pending windows were shed on an over-quota device (oldest first).
    WindowsShed {
        /// The device that exceeded its pending bound.
        device: DeviceId,
        /// How many windows were dropped.
        count: usize,
    },
    /// A scoring batch ran.
    BatchScored {
        /// Windows scored in the batch.
        windows: usize,
        /// Distinct devices covered by the batch.
        devices: usize,
    },
    /// A scoring batch went through the two-stage prefilter path.
    BatchPrefiltered {
        /// Windows shortlisted in the batch.
        windows: usize,
        /// Total candidate users across all shortlists (≤ windows × top_k).
        candidates: usize,
    },
    /// A device was evicted: its stream flushed, remaining windows scored,
    /// and its state dropped.
    StreamEvicted {
        /// The evicted device.
        device: DeviceId,
    },
}
