//! Engine configuration.

use webprofiler::WindowConfig;

/// Tuning knobs of a [`StreamEngine`](crate::StreamEngine).
///
/// The defaults mirror the paper's deployment choices where it makes them
/// (window grid `D = 60 s / S = 30 s`, vote over 3 consecutive windows)
/// and pick pragmatic values elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Sliding-window duration and shift (the paper retains 60 s / 30 s).
    pub window: WindowConfig,
    /// Trailing windows per device the majority vote runs over
    /// (`k` of [`webprofiler::consecutive_window_vote`]). Must be positive.
    pub vote_k: usize,
    /// Closed windows to accumulate (across all devices) before a scoring
    /// batch runs. Larger batches amortize kernel rows better at the cost
    /// of decision latency; 1 degenerates to per-window scoring. Must be
    /// positive.
    pub batch_windows: usize,
    /// Allowed out-of-order lateness in seconds: a window only closes once
    /// event time moves this far past its end, and transactions at most
    /// this far behind the stream head are never dropped.
    pub lateness_secs: u32,
    /// Bound on closed-but-unscored windows per device. When a device
    /// exceeds it (e.g. the scorer cannot keep up with a flood), its
    /// oldest pending windows are shed and counted. Must be positive.
    pub max_pending_per_device: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            window: WindowConfig::PAPER_DEFAULT,
            vote_k: 3,
            batch_windows: 64,
            lateness_secs: 0,
            max_pending_per_device: 1024,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration, panicking on zero-valued knobs that
    /// must be positive (done once at engine construction).
    pub(crate) fn validate(&self) {
        assert!(self.vote_k > 0, "vote_k must be positive");
        assert!(self.batch_windows > 0, "batch_windows must be positive");
        assert!(self.max_pending_per_device > 0, "max_pending_per_device must be positive");
    }
}
