//! Engine configuration.

use webprofiler::WindowConfig;

/// Tuning knobs of a [`StreamEngine`](crate::StreamEngine).
///
/// The defaults mirror the paper's deployment choices where it makes them
/// (window grid `D = 60 s / S = 30 s`, vote over 3 consecutive windows)
/// and pick pragmatic values elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Sliding-window duration and shift (the paper retains 60 s / 30 s).
    pub window: WindowConfig,
    /// Trailing windows per device the majority vote runs over
    /// (`k` of [`webprofiler::consecutive_window_vote`]). Must be positive.
    pub vote_k: usize,
    /// Closed windows to accumulate (across all devices) before a scoring
    /// batch runs. Larger batches amortize kernel rows better at the cost
    /// of decision latency; 1 degenerates to per-window scoring. Must be
    /// positive.
    pub batch_windows: usize,
    /// Allowed out-of-order lateness in seconds: a window only closes once
    /// event time moves this far past its end, and transactions at most
    /// this far behind the stream head are never dropped.
    pub lateness_secs: u32,
    /// Bound on closed-but-unscored windows per device. When a device
    /// exceeds it (e.g. the scorer cannot keep up with a flood), its
    /// oldest pending windows are shed and counted. Must be positive.
    pub max_pending_per_device: usize,
    /// Opt-in single-precision scoring: batch decision values run through
    /// the `f32` panel kernels
    /// ([`UserProfile::batch_decision_values_f32`](webprofiler::UserProfile::batch_decision_values_f32))
    /// instead of the default `f64` path. Halves scoring memory traffic
    /// and doubles SIMD lane width, but values carry single-precision
    /// rounding: accept/reject decisions can differ from the `f64` path
    /// for windows whose decision value sits within that rounding of
    /// zero. Also bypasses the shared kernel-row arena (f32 rows are
    /// transient). Default `false`.
    pub f32_scoring: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            window: WindowConfig::PAPER_DEFAULT,
            vote_k: 3,
            batch_windows: 64,
            lateness_secs: 0,
            max_pending_per_device: 1024,
            f32_scoring: false,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration, panicking on zero-valued knobs that
    /// must be positive (done once at engine construction).
    pub(crate) fn validate(&self) {
        assert!(self.vote_k > 0, "vote_k must be positive");
        assert!(self.batch_windows > 0, "batch_windows must be positive");
        assert!(self.max_pending_per_device > 0, "max_pending_per_device must be positive");
    }
}

/// Two-stage scoring knobs of a [`StreamEngine`](crate::StreamEngine)
/// (see [`StreamEngine::with_prefilter`](crate::StreamEngine::with_prefilter)).
///
/// When enabled, each closed window is first run through a cheap
/// [`webprofiler::CandidateIndex`] shortlist and only the top
/// [`top_k`](Self::top_k) candidate users are scored exactly; everyone
/// else is treated as rejecting the window. The default (no prefilter) is
/// exhaustive scoring of every enrolled profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefilterConfig {
    /// Shortlist size per window. All-linear populations are decided
    /// bit-identically to exhaustive scoring at any `top_k` (the
    /// shortlist's margin guard never prunes a potentially-accepting
    /// linear user); for non-linear profiles larger values trade
    /// throughput for recall headroom. Must be positive.
    pub top_k: usize,
    /// Equivalence mode: additionally run exhaustive scoring on every
    /// batch and count windows whose accepted sets differ
    /// ([`EngineStats::prefilter_mismatches`](crate::EngineStats::prefilter_mismatches)).
    /// Decisions still come from the prefiltered path. Costs the full
    /// exhaustive work again — a validation/canary knob, not a production
    /// one.
    pub verify: bool,
}

impl PrefilterConfig {
    /// Default shortlist size.
    pub const DEFAULT_TOP_K: usize = 16;

    pub(crate) fn validate(&self) {
        assert!(self.top_k > 0, "top_k must be positive");
    }
}

impl Default for PrefilterConfig {
    fn default() -> Self {
        Self { top_k: Self::DEFAULT_TOP_K, verify: false }
    }
}
