//! Persisted profile directories.
//!
//! A monitoring deployment trains profiles offline and ships them to the
//! streaming engine as a directory of `user_<id>.profile` files (the
//! [`webprofiler::UserProfile`] binary format). Since ocsvm persist v2
//! keeps each model's support-vector training indices, reloaded profiles
//! score through the same shared-row fast paths as freshly trained ones.

use proxylog::UserId;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Error, ErrorKind};
use std::path::{Path, PathBuf};
use webprofiler::UserProfile;

/// A directory of persisted user profiles, one `user_<id>.profile` file
/// per user.
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Points the store at a directory (created lazily on
    /// [`save`](Self::save)).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory backing the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes every profile into the store, returning how many were
    /// written. Existing files for the same users are overwritten.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O errors.
    pub fn save(&self, profiles: &BTreeMap<UserId, UserProfile>) -> io::Result<usize> {
        fs::create_dir_all(&self.dir)?;
        for (user, profile) in profiles {
            let path = self.profile_path(*user);
            let mut writer = BufWriter::new(File::create(&path)?);
            profile.write_to(&mut writer)?;
        }
        Ok(profiles.len())
    }

    /// Loads every `*.profile` file in the store, keyed by the profiled
    /// user recorded *inside* each file (file names are a convention, not
    /// trusted).
    ///
    /// # Errors
    ///
    /// `InvalidData` if a file is corrupt or two files profile the same
    /// user; other I/O errors from the filesystem.
    pub fn load(&self) -> io::Result<BTreeMap<UserId, UserProfile>> {
        let mut profiles = BTreeMap::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("profile") {
                continue;
            }
            let mut reader = BufReader::new(File::open(&path)?);
            let profile = UserProfile::read_from(&mut reader)
                .map_err(|e| Error::new(e.kind(), format!("{}: {e}", path.display())))?;
            let user = profile.user();
            if profiles.insert(user, profile).is_some() {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("duplicate profile for user {user:?} at {}", path.display()),
                ));
            }
        }
        Ok(profiles)
    }

    fn profile_path(&self, user: UserId) -> PathBuf {
        self.dir.join(format!("user_{}.profile", user.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::{Scenario, TraceGenerator};
    use webprofiler::{ProfileTrainer, Vocabulary, WindowAggregator, WindowConfig};

    fn temp_store(tag: &str) -> ModelStore {
        let dir = std::env::temp_dir().join(format!("streamid-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ModelStore::new(dir)
    }

    #[test]
    fn round_trip_preserves_every_decision() {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let store = temp_store("roundtrip");
        assert_eq!(store.save(&profiles).unwrap(), profiles.len());
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), profiles.len());

        // Reloaded profiles make bit-identical decisions on real windows.
        let device = dataset.devices()[0];
        let aggregator = WindowAggregator::new(&vocab, WindowConfig::PAPER_DEFAULT);
        let windows = aggregator.device_windows(&dataset, device);
        assert!(!windows.is_empty());
        for (user, original) in &profiles {
            let restored = &loaded[user];
            for window in &windows {
                assert_eq!(
                    original.decision_value(&window.features),
                    restored.decision_value(&window.features),
                    "user {user:?} window {:?}",
                    window.start
                );
            }
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_rejects_corrupt_files_with_the_path_in_the_error() {
        let store = temp_store("corrupt");
        fs::create_dir_all(store.dir()).unwrap();
        fs::write(store.dir().join("user_0.profile"), b"not a profile").unwrap();
        let err = store.load().unwrap_err();
        assert!(err.to_string().contains("user_0.profile"), "error was: {err}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn non_profile_files_are_ignored() {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let store = temp_store("ignore");
        store.save(&profiles).unwrap();
        fs::write(store.dir().join("README.txt"), b"not a model").unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), profiles.len());
        let _ = fs::remove_dir_all(store.dir());
    }
}
