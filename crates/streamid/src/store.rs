//! Persisted profile directories.
//!
//! A monitoring deployment trains profiles offline and ships them to the
//! streaming engine as a directory of `user_<id>.profile` files (the
//! [`webprofiler::UserProfile`] binary format). Since ocsvm persist v2
//! keeps each model's support-vector training indices, reloaded profiles
//! score through the same shared-row fast paths as freshly trained ones.

use proxylog::UserId;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Error, ErrorKind};
use std::path::{Path, PathBuf};
use webprofiler::UserProfile;

/// One profile file a [`ModelStore`] load could not use, and why.
#[derive(Debug)]
pub struct LoadIssue {
    /// The offending `*.profile` file.
    pub path: PathBuf,
    /// What went wrong opening or decoding it.
    pub error: Error,
}

impl fmt::Display for LoadIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.error)
    }
}

/// Structured load failure: *every* unreadable, corrupt, or duplicate
/// profile file in the store, not just the first one encountered.
///
/// [`ModelStore::load`] wraps this in the [`io::Error`] it returns (as the
/// error's source), so callers that only print get the full list, while a
/// daemon that wants to start degraded uses
/// [`ModelStore::load_lossy`] to obtain the loadable subset alongside the
/// same issue list.
#[derive(Debug)]
pub struct StoreLoadError {
    /// Every file that failed, in path order.
    pub issues: Vec<LoadIssue>,
}

impl fmt::Display for StoreLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} profile file(s) failed to load", self.issues.len())?;
        for issue in &self.issues {
            write!(f, "\n  {issue}")?;
        }
        Ok(())
    }
}

impl std::error::Error for StoreLoadError {}

/// A directory of persisted user profiles, one `user_<id>.profile` file
/// per user.
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Points the store at a directory (created lazily on
    /// [`save`](Self::save)).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The directory backing the store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes every profile into the store, returning how many were
    /// written. Existing files for the same users are overwritten.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O errors.
    pub fn save(&self, profiles: &BTreeMap<UserId, UserProfile>) -> io::Result<usize> {
        fs::create_dir_all(&self.dir)?;
        for (user, profile) in profiles {
            let path = self.profile_path(*user);
            let mut writer = BufWriter::new(File::create(&path)?);
            profile.write_to(&mut writer)?;
        }
        Ok(profiles.len())
    }

    /// Loads every `*.profile` file in the store, keyed by the profiled
    /// user recorded *inside* each file (file names are a convention, not
    /// trusted).
    ///
    /// # Errors
    ///
    /// `InvalidData` wrapping a [`StoreLoadError`] that lists **all**
    /// unreadable/corrupt/duplicate files (not just the first), so an
    /// operator sees the complete damage in one pass; other I/O errors
    /// from scanning the directory itself.
    pub fn load(&self) -> io::Result<BTreeMap<UserId, UserProfile>> {
        let (profiles, issues) = self.load_lossy()?;
        if issues.is_empty() {
            Ok(profiles)
        } else {
            Err(Error::new(ErrorKind::InvalidData, StoreLoadError { issues }))
        }
    }

    /// Degraded-start variant of [`load`](Self::load): returns every
    /// profile that *could* be loaded together with a [`LoadIssue`] per
    /// file that could not — a daemon can come up serving the loadable
    /// subset and report the rest instead of refusing to start.
    ///
    /// Files are visited in path order, so which duplicate wins is
    /// deterministic (the first file, ascending by name; later files for
    /// the same user become issues).
    ///
    /// # Errors
    ///
    /// Only directory-scan failures (e.g. the store directory does not
    /// exist); per-file problems are returned as issues, never errors.
    pub fn load_lossy(&self) -> io::Result<(BTreeMap<UserId, UserProfile>, Vec<LoadIssue>)> {
        let mut paths: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .map(|entry| entry.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        paths.sort();
        let mut profiles = BTreeMap::new();
        let mut issues = Vec::new();
        for path in paths {
            if path.extension().and_then(|e| e.to_str()) != Some("profile") {
                continue;
            }
            let profile = File::open(&path)
                .and_then(|file| UserProfile::read_from(&mut BufReader::new(file)));
            match profile {
                Ok(profile) => match profiles.entry(profile.user()) {
                    Entry::Occupied(existing) => issues.push(LoadIssue {
                        path,
                        error: Error::new(
                            ErrorKind::InvalidData,
                            format!("duplicate profile for user {:?}", existing.key()),
                        ),
                    }),
                    Entry::Vacant(slot) => {
                        slot.insert(profile);
                    }
                },
                Err(error) => issues.push(LoadIssue { path, error }),
            }
        }
        Ok((profiles, issues))
    }

    fn profile_path(&self, user: UserId) -> PathBuf {
        self.dir.join(format!("user_{}.profile", user.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracegen::{Scenario, TraceGenerator};
    use webprofiler::{ProfileTrainer, Vocabulary, WindowAggregator, WindowConfig};

    fn temp_store(tag: &str) -> ModelStore {
        let dir = std::env::temp_dir().join(format!("streamid-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ModelStore::new(dir)
    }

    #[test]
    fn round_trip_preserves_every_decision() {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let store = temp_store("roundtrip");
        assert_eq!(store.save(&profiles).unwrap(), profiles.len());
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), profiles.len());

        // Reloaded profiles make bit-identical decisions on real windows.
        let device = dataset.devices()[0];
        let aggregator = WindowAggregator::new(&vocab, WindowConfig::PAPER_DEFAULT);
        let windows = aggregator.device_windows(&dataset, device);
        assert!(!windows.is_empty());
        for (user, original) in &profiles {
            let restored = &loaded[user];
            for window in &windows {
                assert_eq!(
                    original.decision_value(&window.features),
                    restored.decision_value(&window.features),
                    "user {user:?} window {:?}",
                    window.start
                );
            }
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_rejects_corrupt_files_with_the_path_in_the_error() {
        let store = temp_store("corrupt");
        fs::create_dir_all(store.dir()).unwrap();
        fs::write(store.dir().join("user_0.profile"), b"not a profile").unwrap();
        let err = store.load().unwrap_err();
        assert!(err.to_string().contains("user_0.profile"), "error was: {err}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_reports_every_bad_file_not_just_the_first() {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let store = temp_store("multi-issue");
        store.save(&profiles).unwrap();
        // Two distinct corrupt files plus a duplicate of a good user
        // (sorted after the original, so the original wins).
        fs::write(store.dir().join("aa_bad.profile"), b"garbage one").unwrap();
        fs::write(store.dir().join("zz_bad.profile"), b"garbage two").unwrap();
        let good = fs::read(store.dir().join(format!("user_{}.profile", {
            let first = *profiles.keys().next().unwrap();
            first.0
        })))
        .unwrap();
        fs::write(store.dir().join("zz_dup.profile"), &good).unwrap();
        let err = store.load().unwrap_err();
        let msg = err.to_string();
        for needle in ["aa_bad.profile", "zz_bad.profile", "zz_dup.profile", "duplicate"] {
            assert!(msg.contains(needle), "missing {needle:?} in: {msg}");
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_lossy_starts_degraded_with_the_loadable_subset() {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let store = temp_store("lossy");
        store.save(&profiles).unwrap();
        fs::write(store.dir().join("broken.profile"), b"not a profile").unwrap();
        let (loaded, issues) = store.load_lossy().unwrap();
        assert_eq!(loaded.len(), profiles.len(), "every intact profile loads");
        assert_eq!(issues.len(), 1);
        assert!(issues[0].path.ends_with("broken.profile"));
        // The loaded subset still decides identically to the originals.
        let device = dataset.devices()[0];
        let aggregator = WindowAggregator::new(&vocab, WindowConfig::PAPER_DEFAULT);
        let windows = aggregator.device_windows(&dataset, device);
        for (user, original) in &profiles {
            for window in &windows {
                assert_eq!(
                    original.decision_value(&window.features),
                    loaded[user].decision_value(&window.features),
                );
            }
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_lossy_on_a_missing_directory_is_a_hard_error() {
        let store = ModelStore::new("/nonexistent/streamid-store-missing");
        assert!(store.load_lossy().is_err());
        assert!(store.load().is_err());
    }

    #[test]
    fn restored_approximate_models_score_identically_and_keep_their_backend() {
        use ocsvm::SolverBackend;
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let aggregator = WindowAggregator::new(&vocab, WindowConfig::PAPER_DEFAULT);
        let device = dataset.devices()[0];
        let windows = aggregator.device_windows(&dataset, device);
        assert!(!windows.is_empty());
        let features: Vec<&_> = windows.iter().map(|w| &w.features).collect();
        for backend in [SolverBackend::EnsembleOneData, SolverBackend::SampledFw] {
            let (profiles, _) = ProfileTrainer::new(&vocab)
                .max_training_windows(150)
                .solver_backend(backend)
                .train_all(&dataset);
            let store = temp_store(&format!("approx-{backend:?}"));
            store.save(&profiles).unwrap();
            let loaded = store.load().unwrap();
            assert_eq!(loaded.len(), profiles.len());
            for (user, original) in &profiles {
                let restored = &loaded[user];
                // The backend survives the round trip and the restored
                // model batch-scores bit-identically to the in-memory one
                // (the linear default kernel routes both through the
                // collapsed-weight batch scorer).
                assert_eq!(original.solver_backend(), backend, "{backend:?} {user:?}");
                assert_eq!(restored.solver_backend(), backend, "{backend:?} {user:?}");
                assert_eq!(
                    original.batch_decision_values(&features),
                    restored.batch_decision_values(&features),
                    "{backend:?} {user:?}"
                );
            }
            let _ = fs::remove_dir_all(store.dir());
        }
    }

    #[test]
    fn corrupt_backend_tag_surfaces_as_a_load_issue() {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let store = temp_store("bad-backend");
        store.save(&profiles).unwrap();
        // The solver-backend tag is the final byte of the embedded model
        // stream, which is the final byte of the profile file.
        let first = *profiles.keys().next().unwrap();
        let path = store.dir().join(format!("user_{}.profile", first.0));
        let mut bytes = fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() = 0xEE;
        fs::write(&path, &bytes).unwrap();
        let (loaded, issues) = store.load_lossy().unwrap();
        assert_eq!(loaded.len(), profiles.len() - 1, "only the tampered file fails");
        assert!(!loaded.contains_key(&first));
        assert_eq!(issues.len(), 1);
        assert!(issues[0].error.to_string().contains("solver-backend"), "{}", issues[0].error);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn non_profile_files_are_ignored() {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let store = temp_store("ignore");
        store.save(&profiles).unwrap();
        fs::write(store.dir().join("README.txt"), b"not a model").unwrap();
        let loaded = store.load().unwrap();
        assert_eq!(loaded.len(), profiles.len());
        let _ = fs::remove_dir_all(store.dir());
    }
}
