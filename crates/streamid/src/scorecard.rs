//! Per-scenario detection telemetry over labeled attack intervals.
//!
//! `tracegen`'s attack layer marks which (device, victim, interval)
//! triples carry injected traffic. [`ScenarioTelemetry`] consumes the
//! engine's [`WindowDecision`]s and folds them into the three numbers an
//! attack evaluation needs (`bench --bin attack_eval`):
//!
//! * **detection rate** — fraction of attack windows in which the
//!   victim's own model *rejected* the traffic (the OCSVM noticed the
//!   account was not behaving like its owner);
//! * **false-accept rate** — fraction of attack windows the voter still
//!   attributed to the victim (the attacker passed as the owner);
//! * **time-to-detect** — per label, seconds from attack start to the
//!   first rejected attack window (undetected attacks are charged their
//!   full duration, so the metric cannot be gamed by never detecting).
//!
//! The struct is deliberately engine-agnostic: it only reads decisions,
//! so offline `identify_on_device` replays can feed it too.

use crate::WindowDecision;
use proxylog::{DeviceId, Timestamp, UserId};

/// One labeled attack interval, as produced by `tracegen`'s attack layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledInterval {
    /// Device carrying the injected traffic.
    pub device: DeviceId,
    /// Account under which the malicious traffic appears.
    pub victim: UserId,
    /// First instant of the attack.
    pub start: Timestamp,
    /// End of the attack (exclusive).
    pub end: Timestamp,
}

/// Accumulates decisions against a set of labeled intervals.
#[derive(Debug, Clone)]
pub struct ScenarioTelemetry {
    labels: Vec<LabeledInterval>,
    /// Per label: attack windows seen / detected (rejected) / falsely
    /// accepted, and the start of the first detected window.
    attack_windows: Vec<usize>,
    detected: Vec<usize>,
    false_accepts: Vec<usize>,
    first_detection: Vec<Option<Timestamp>>,
    benign_windows: usize,
    benign_rejects: usize,
}

impl ScenarioTelemetry {
    /// Starts a fresh accumulator over `labels`.
    pub fn new(labels: Vec<LabeledInterval>) -> Self {
        let n = labels.len();
        Self {
            labels,
            attack_windows: vec![0; n],
            detected: vec![0; n],
            false_accepts: vec![0; n],
            first_detection: vec![None; n],
            benign_windows: 0,
            benign_rejects: 0,
        }
    }

    /// Folds one engine decision into the telemetry.
    ///
    /// A decision is matched against *every* label on its device whose
    /// victim was active in the window (taxonomy evolution labels many
    /// users at once). Inside the label's interval the window counts as
    /// an attack window; outside, as a benign window for that victim —
    /// the benign-reject rate is the detector's false-alarm floor.
    pub fn record(&mut self, decision: &WindowDecision) {
        for (i, label) in self.labels.iter().enumerate() {
            if decision.device != label.device || !decision.actual_users.contains(&label.victim) {
                continue;
            }
            let accepted = decision.accepted_by.contains(&label.victim);
            if decision.start >= label.start && decision.start < label.end {
                self.attack_windows[i] += 1;
                if !accepted {
                    self.detected[i] += 1;
                    if self.first_detection[i].is_none() {
                        self.first_detection[i] = Some(decision.start);
                    }
                }
                if decision.vote == Some(label.victim) {
                    self.false_accepts[i] += 1;
                }
            } else {
                self.benign_windows += 1;
                if !accepted {
                    self.benign_rejects += 1;
                }
            }
        }
    }

    /// Finalizes the telemetry into rates. All values are finite.
    pub fn report(&self) -> ScenarioReport {
        let attack_windows: usize = self.attack_windows.iter().sum();
        let detected: usize = self.detected.iter().sum();
        let false_accepts: usize = self.false_accepts.iter().sum();
        let rate = |num: usize, den: usize| if den == 0 { 0.0 } else { num as f64 / den as f64 };

        // Mean time-to-detect over labels that produced at least one
        // attack window; undetected labels contribute their full length.
        let mut ttd_sum = 0.0;
        let mut ttd_n = 0usize;
        let mut detected_labels = 0usize;
        for (i, label) in self.labels.iter().enumerate() {
            if self.attack_windows[i] == 0 {
                continue;
            }
            ttd_n += 1;
            match self.first_detection[i] {
                Some(at) => {
                    detected_labels += 1;
                    ttd_sum += (at.as_secs() - label.start.as_secs()).max(0) as f64;
                }
                None => ttd_sum += (label.end.as_secs() - label.start.as_secs()) as f64,
            }
        }
        ScenarioReport {
            labels: self.labels.len(),
            detected_labels,
            attack_windows,
            benign_windows: self.benign_windows,
            detection_rate: rate(detected, attack_windows),
            false_accept_rate: rate(false_accepts, attack_windows),
            benign_reject_rate: rate(self.benign_rejects, self.benign_windows),
            time_to_detect_s: if ttd_n == 0 { 0.0 } else { ttd_sum / ttd_n as f64 },
        }
    }
}

/// Folded detection metrics of one scenario run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioReport {
    /// Labeled attack intervals the run was scored against.
    pub labels: usize,
    /// Labels with at least one rejected attack window.
    pub detected_labels: usize,
    /// Windows overlapping a label's interval on its device.
    pub attack_windows: usize,
    /// The labeled victims' windows outside their attack intervals.
    pub benign_windows: usize,
    /// Rejected attack windows / attack windows.
    pub detection_rate: f64,
    /// Attack windows still voted to the victim / attack windows.
    pub false_accept_rate: f64,
    /// Rejected benign windows / benign windows (false-alarm floor).
    pub benign_reject_rate: f64,
    /// Mean seconds from attack start to first rejection; undetected
    /// labels count as their full duration.
    pub time_to_detect_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocsvm::SparseVector;
    use std::time::Duration;

    fn decision(
        device: u32,
        start: i64,
        accepted: &[u32],
        actual: &[u32],
        vote: Option<u32>,
    ) -> WindowDecision {
        WindowDecision {
            device: DeviceId(device),
            start: Timestamp(start),
            transaction_count: 1,
            features: SparseVector::new(),
            accepted_by: accepted.iter().map(|&u| UserId(u)).collect(),
            actual_users: actual.iter().map(|&u| UserId(u)).collect(),
            vote: vote.map(UserId),
            queue_latency: Duration::ZERO,
        }
    }

    fn label(device: u32, victim: u32, start: i64, end: i64) -> LabeledInterval {
        LabeledInterval {
            device: DeviceId(device),
            victim: UserId(victim),
            start: Timestamp(start),
            end: Timestamp(end),
        }
    }

    #[test]
    fn detection_and_false_accept_rates() {
        let mut t = ScenarioTelemetry::new(vec![label(0, 1, 1_000, 2_000)]);
        // Benign window before the attack, accepted: no alarm.
        t.record(&decision(0, 500, &[1], &[1], Some(1)));
        // Attack window, rejected: detection.
        t.record(&decision(0, 1_000, &[], &[1], None));
        // Attack window, accepted and voted to the victim: false accept.
        t.record(&decision(0, 1_500, &[1], &[1], Some(1)));
        // Other device: ignored entirely.
        t.record(&decision(9, 1_200, &[], &[1], None));
        let r = t.report();
        assert_eq!(r.attack_windows, 2);
        assert_eq!(r.benign_windows, 1);
        assert_eq!(r.detection_rate, 0.5);
        assert_eq!(r.false_accept_rate, 0.5);
        assert_eq!(r.benign_reject_rate, 0.0);
        assert_eq!(r.detected_labels, 1);
        // First rejection at 1_000, attack started at 1_000.
        assert_eq!(r.time_to_detect_s, 0.0);
    }

    #[test]
    fn undetected_attack_charges_full_duration() {
        let mut t = ScenarioTelemetry::new(vec![label(0, 1, 1_000, 4_600)]);
        t.record(&decision(0, 1_000, &[1], &[1], Some(1)));
        t.record(&decision(0, 2_000, &[1], &[1], Some(1)));
        let r = t.report();
        assert_eq!(r.detection_rate, 0.0);
        assert_eq!(r.detected_labels, 0);
        assert_eq!(r.time_to_detect_s, 3_600.0);
    }

    #[test]
    fn delayed_detection_measures_latency() {
        let mut t = ScenarioTelemetry::new(vec![label(0, 1, 1_000, 10_000)]);
        t.record(&decision(0, 1_000, &[1], &[1], Some(1)));
        t.record(&decision(0, 2_800, &[], &[1], None));
        let r = t.report();
        assert_eq!(r.time_to_detect_s, 1_800.0);
    }

    #[test]
    fn multi_label_window_attributes_to_every_matching_victim() {
        // Two victims drifting on the same device (taxonomy evolution).
        let mut t =
            ScenarioTelemetry::new(vec![label(0, 1, 1_000, 2_000), label(0, 2, 1_000, 2_000)]);
        t.record(&decision(0, 1_500, &[2], &[1, 2], Some(2)));
        let r = t.report();
        // Victim 1 rejected (detected), victim 2 accepted.
        assert_eq!(r.attack_windows, 2);
        assert_eq!(r.detection_rate, 0.5);
        assert_eq!(r.detected_labels, 1);
    }

    #[test]
    fn empty_run_reports_finite_zeroes() {
        let t = ScenarioTelemetry::new(vec![label(0, 1, 0, 100)]);
        let r = t.report();
        assert_eq!(r.detection_rate, 0.0);
        assert_eq!(r.false_accept_rate, 0.0);
        assert_eq!(r.time_to_detect_s, 0.0);
        assert!(r.detection_rate.is_finite());
    }
}
