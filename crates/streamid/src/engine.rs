//! The streaming identification engine.

use crate::config::{EngineConfig, PrefilterConfig};
#[cfg(feature = "tracelog")]
use crate::telemetry::TraceEvent;
use ocsvm::SparseVector;
use proxylog::{DeviceId, Timestamp, Transaction, UserId};
#[cfg(feature = "tracelog")]
use std::collections::BTreeSet;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};
use webprofiler::{
    majority_vote, parallel_map, CandidateIndex, ShortlistScratch, TransactionWindow, UserProfile,
    Vocabulary, WindowKey, WindowStream,
};

/// Estimated per-batch scoring operations (windows × support vectors,
/// windows × 1 for collapsed linear models) below which a batch is scored
/// inline instead of fanning profiles out across cores — spawning scoped
/// threads costs tens of microseconds, which dwarfs small batches.
const PARALLEL_WORK_THRESHOLD: usize = 16_384;

/// One scored window on a monitored device, with its running vote.
///
/// The identification fields (`start`, `accepted_by`, `actual_users`)
/// match what [`webprofiler::identify_on_device`] produces for the same
/// window, and `vote` matches [`webprofiler::consecutive_window_vote`]
/// over the trailing [`EngineConfig::vote_k`] windows of the device — the
/// engine's batched scoring is bit-identical to offline per-window
/// scoring.
#[derive(Debug, Clone)]
pub struct WindowDecision {
    /// Device the window was observed on.
    pub device: DeviceId,
    /// Window start time (epoch-aligned grid).
    pub start: Timestamp,
    /// Transactions aggregated into the window.
    pub transaction_count: usize,
    /// The window's aggregated feature vector (kept so replays can verify
    /// bit-identity against offline aggregation).
    pub features: SparseVector,
    /// User models that accepted the window, ascending.
    pub accepted_by: Vec<UserId>,
    /// Ground-truth users active in the window, ascending.
    pub actual_users: Vec<UserId>,
    /// Strict-majority vote over the device's trailing windows, if any.
    pub vote: Option<UserId>,
    /// Wall-clock time the window spent closed-but-unscored (decision
    /// latency attributable to micro-batching).
    pub queue_latency: Duration,
}

/// Per-device incremental state: the open-window composer plus the
/// trailing acceptance sets the vote runs over.
#[derive(Debug)]
struct DeviceState<'a> {
    stream: WindowStream<'a>,
    /// Acceptance sets of the last `vote_k` scored windows, oldest first.
    history: VecDeque<Vec<UserId>>,
    /// How much of the stream's `late_dropped` count has already been
    /// folded into the engine's lifetime counter.
    late_synced: u64,
}

/// A closed window waiting for the next scoring batch.
#[derive(Debug)]
struct PendingWindow {
    device: DeviceId,
    window: TransactionWindow,
    enqueued: Instant,
}

/// Counters accumulated over an engine's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Devices with window state.
    pub devices: usize,
    /// Windows scored (decisions emitted).
    pub windows_scored: u64,
    /// Closed windows shed by per-device backpressure, never scored.
    pub windows_shed: u64,
    /// Transactions dropped as too late for every window that could have
    /// contained them (summed over devices).
    pub late_dropped: u64,
    /// Scoring batches run.
    pub batches: u64,
    /// Largest batch scored.
    pub max_batch: usize,
    /// Total wall-clock time spent in batched scoring.
    pub scoring: Duration,
    /// Windows decided through the candidate prefilter (zero without a
    /// [`PrefilterConfig`]).
    pub prefilter_windows: u64,
    /// Exact profile scorings the prefilter allowed (Σ shortlist sizes);
    /// exhaustive scoring would have cost `prefilter_windows × profiles`.
    pub prefilter_candidates: u64,
    /// Windows whose prefiltered accepted set differed from exhaustive
    /// scoring, counted only in [`PrefilterConfig::verify`] mode.
    pub prefilter_mismatches: u64,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} devices, {} windows scored in {} batches (max {}), \
             {} shed, {} late-dropped, {:.3}s scoring",
            self.devices,
            self.windows_scored,
            self.batches,
            self.max_batch,
            self.windows_shed,
            self.late_dropped,
            self.scoring.as_secs_f64(),
        )?;
        if self.prefilter_windows > 0 {
            write!(
                f,
                ", prefilter: {} candidates over {} windows ({} mismatches)",
                self.prefilter_candidates, self.prefilter_windows, self.prefilter_mismatches,
            )?;
        }
        Ok(())
    }
}

/// Online identification engine over an unbounded transaction stream.
///
/// Feed transactions from any source — a [`proxylog::LogTail`], a
/// channel, a live `tracegen` replay — via [`observe`](Self::observe);
/// decisions come back as soon as their scoring batch runs. See the crate
/// docs for the pipeline and the bit-identity guarantee.
#[derive(Debug)]
pub struct StreamEngine<'a> {
    profiles: &'a BTreeMap<UserId, UserProfile>,
    vocab: &'a Vocabulary,
    config: EngineConfig,
    devices: BTreeMap<DeviceId, DeviceState<'a>>,
    /// Closed windows across all devices, oldest first, awaiting scoring.
    pending: Vec<PendingWindow>,
    windows_scored: u64,
    windows_shed: u64,
    /// Lifetime count of too-late transactions, accumulated as streams
    /// report them (exactly like `windows_shed`) so history survives
    /// device eviction.
    late_dropped: u64,
    batches: u64,
    max_batch: usize,
    scoring: Duration,
    arena: Option<std::sync::Arc<ocsvm::KernelRowArena>>,
    prefilter: Option<PrefilterState>,
    prefilter_windows: u64,
    prefilter_candidates: u64,
    prefilter_mismatches: u64,
    #[cfg(feature = "tracelog")]
    events: Vec<TraceEvent>,
}

/// Two-stage scoring state: the candidate index over the enrolled
/// population plus per-batch scratch.
#[derive(Debug)]
struct PrefilterState {
    config: PrefilterConfig,
    index: CandidateIndex,
    /// Dense per-user scratch reused across windows.
    scratch: ShortlistScratch,
}

impl<'a> StreamEngine<'a> {
    /// Creates an engine scoring against `profiles`.
    ///
    /// # Panics
    ///
    /// Panics if any [`EngineConfig`] knob that must be positive is zero.
    pub fn new(
        profiles: &'a BTreeMap<UserId, UserProfile>,
        vocab: &'a Vocabulary,
        config: EngineConfig,
    ) -> Self {
        config.validate();
        Self {
            profiles,
            vocab,
            config,
            devices: BTreeMap::new(),
            pending: Vec::new(),
            windows_scored: 0,
            windows_shed: 0,
            late_dropped: 0,
            batches: 0,
            max_batch: 0,
            scoring: Duration::ZERO,
            arena: None,
            prefilter: None,
            prefilter_windows: 0,
            prefilter_candidates: 0,
            prefilter_mismatches: 0,
            #[cfg(feature = "tracelog")]
            events: Vec::new(),
        }
    }

    /// Enables two-stage scoring: a [`webprofiler::CandidateIndex`] built
    /// once over the enrolled profiles shortlists
    /// [`PrefilterConfig::top_k`] candidate users per closed window, and
    /// exact scoring runs only on the shortlist (users outside it reject).
    /// Without this call every window is scored against every profile.
    ///
    /// With all-linear profiles (the paper corpus default) every window
    /// is decided bit-identically to the exhaustive path at any `top_k` —
    /// the shortlist's margin guard never prunes a potentially-accepting
    /// linear user (see the `webprofiler::prefilter` module docs);
    /// [`PrefilterConfig::verify`] cross-checks the equivalence at
    /// runtime.
    ///
    /// # Panics
    ///
    /// Panics if [`PrefilterConfig::top_k`] is zero.
    pub fn with_prefilter(mut self, config: PrefilterConfig) -> Self {
        config.validate();
        self.prefilter = Some(PrefilterState {
            config,
            index: CandidateIndex::build(self.profiles, self.vocab),
            scratch: ShortlistScratch::default(),
        });
        self
    }

    /// Charges the kernel rows of non-linear profile scoring to a shared
    /// [`ocsvm::KernelRowArena`] (e.g. [`ocsvm::KernelRowArena::global`]),
    /// keyed by the profiled user. Scoring stays bit-identical to the
    /// default path; what changes is accounting — streaming kernel rows
    /// then live under the same process-wide memory budget (and show up in
    /// the same [`ocsvm::ArenaStats`]) as a concurrent grid search's.
    pub fn with_arena(mut self, arena: std::sync::Arc<ocsvm::KernelRowArena>) -> Self {
        self.arena = Some(arena);
        self
    }

    /// The configuration in force.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Closed windows currently waiting for a scoring batch.
    pub fn pending_windows(&self) -> usize {
        self.pending.len()
    }

    /// Feeds one transaction; returns the decisions of any scoring batch
    /// it triggered (usually empty — decisions arrive in bursts of
    /// [`EngineConfig::batch_windows`]).
    ///
    /// Transactions may arrive out of order within the configured
    /// lateness; older stragglers are dropped and counted
    /// ([`EngineStats::late_dropped`]), never scored into a wrong window.
    pub fn observe(&mut self, tx: Transaction) -> Vec<WindowDecision> {
        let device = tx.device;
        if !self.devices.contains_key(&device) {
            #[cfg(feature = "tracelog")]
            self.events.push(TraceEvent::StreamOpened { device });
            self.devices.insert(
                device,
                DeviceState {
                    stream: WindowStream::new(
                        self.vocab,
                        self.config.window,
                        WindowKey::Device(device),
                    )
                    .with_lateness(self.config.lateness_secs),
                    history: VecDeque::with_capacity(self.config.vote_k),
                    late_synced: 0,
                },
            );
        }
        let state = self.devices.get_mut(&device).expect("just inserted");
        let closed = state.stream.offer(tx);
        // Fold new late drops into the lifetime counter immediately, so
        // the count survives the device's state being evicted.
        let late = state.stream.late_dropped();
        if late > state.late_synced {
            self.late_dropped += late - state.late_synced;
            state.late_synced = late;
        }
        self.enqueue(device, closed);
        if self.pending.len() >= self.config.batch_windows {
            self.score_pending()
        } else {
            Vec::new()
        }
    }

    /// Scores every pending window now, without waiting for a full batch —
    /// for latency-sensitive callers or quiet periods.
    pub fn drain(&mut self) -> Vec<WindowDecision> {
        self.score_pending()
    }

    /// Ends the stream: flushes every device's open windows and scores
    /// everything still pending. The engine stays usable afterwards (its
    /// window streams restart on the next transaction).
    pub fn finish(&mut self) -> Vec<WindowDecision> {
        let flushed: Vec<(DeviceId, Vec<TransactionWindow>)> = self
            .devices
            .iter_mut()
            .map(|(&device, state)| (device, state.stream.flush()))
            .collect();
        for (device, windows) in flushed {
            self.enqueue(device, windows);
        }
        self.score_pending()
    }

    /// Lifetime counters (live devices, windows scored/shed, late drops,
    /// batch sizes, scoring time, prefilter usage). All counters except
    /// `devices` are cumulative over the engine's lifetime: evicting a
    /// device does not erase what it already contributed.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            devices: self.devices.len(),
            windows_scored: self.windows_scored,
            windows_shed: self.windows_shed,
            late_dropped: self.late_dropped,
            batches: self.batches,
            max_batch: self.max_batch,
            scoring: self.scoring,
            prefilter_windows: self.prefilter_windows,
            prefilter_candidates: self.prefilter_candidates,
            prefilter_mismatches: self.prefilter_mismatches,
        }
    }

    /// Retires a device's window state — a monitored host going away, or
    /// an idle-state sweep bounding memory. The device's open windows are
    /// flushed and scored (together with everything else pending, like
    /// [`drain`](Self::drain)); the returned decisions include them. The
    /// device's contribution to the lifetime counters
    /// ([`EngineStats::late_dropped`] in particular) is retained. A later
    /// transaction from the same device reopens it from scratch.
    pub fn evict_device(&mut self, device: DeviceId) -> Vec<WindowDecision> {
        if !self.devices.contains_key(&device) {
            return Vec::new();
        }
        let windows = self.devices.get_mut(&device).expect("checked above").stream.flush();
        self.enqueue(device, windows);
        let decisions = self.score_pending();
        self.devices.remove(&device);
        #[cfg(feature = "tracelog")]
        self.events.push(TraceEvent::StreamEvicted { device });
        decisions
    }

    /// The structured event log (only with the `tracelog` feature).
    #[cfg(feature = "tracelog")]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains the structured event log, leaving it empty (only with the
    /// `tracelog` feature). Long-running embedders — the `identd` daemon
    /// in particular — poll this to fold events into their own counters
    /// without the in-memory log growing for the process lifetime.
    #[cfg(feature = "tracelog")]
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Queues closed windows for scoring, shedding the device's oldest
    /// pending windows beyond [`EngineConfig::max_pending_per_device`].
    fn enqueue(&mut self, device: DeviceId, windows: Vec<TransactionWindow>) {
        if windows.is_empty() {
            return;
        }
        #[cfg(feature = "tracelog")]
        self.events.push(TraceEvent::WindowsClosed { device, count: windows.len() });
        let now = Instant::now();
        self.pending.extend(windows.into_iter().map(|window| PendingWindow {
            device,
            window,
            enqueued: now,
        }));
        let queued = self.pending.iter().filter(|p| p.device == device).count();
        if queued > self.config.max_pending_per_device {
            let mut excess = queued - self.config.max_pending_per_device;
            let shed = excess;
            self.pending.retain(|p| {
                if excess > 0 && p.device == device {
                    excess -= 1;
                    false
                } else {
                    true
                }
            });
            self.windows_shed += shed as u64;
            #[cfg(feature = "tracelog")]
            self.events.push(TraceEvent::WindowsShed { device, count: shed });
        }
    }

    /// Scores every pending window in one micro-batch — exhaustively
    /// (one [`batch_decision_values`](UserProfile::batch_decision_values)
    /// call per profile, profiles fanned out across cores) or through the
    /// candidate prefilter when one is configured — then per-window
    /// acceptance sets and trailing votes in arrival order.
    fn score_pending(&mut self) -> Vec<WindowDecision> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let batch: Vec<PendingWindow> = std::mem::take(&mut self.pending);
        let started = Instant::now();
        let probes: Vec<&SparseVector> = batch.iter().map(|p| &p.window.features).collect();
        // Stage one, when configured: per-window candidate shortlists.
        let shortlists: Option<Vec<Vec<u32>>> = self.prefilter.as_mut().map(|state| {
            let mut scratch = std::mem::take(&mut state.scratch);
            let lists: Vec<Vec<u32>> = probes
                .iter()
                .map(|features| state.index.shortlist(features, state.config.top_k, &mut scratch))
                .collect();
            state.scratch = scratch;
            lists
        });
        let accepted = match &shortlists {
            Some(lists) => {
                let accepted = self.score_shortlisted(&probes, lists);
                let candidates: u64 = lists.iter().map(|l| l.len() as u64).sum();
                self.prefilter_windows += probes.len() as u64;
                self.prefilter_candidates += candidates;
                let verify = self.prefilter.as_ref().is_some_and(|state| state.config.verify);
                if verify {
                    let exhaustive = self.score_exhaustive(&probes);
                    self.prefilter_mismatches +=
                        accepted.iter().zip(&exhaustive).filter(|(a, b)| a != b).count() as u64;
                }
                #[cfg(feature = "tracelog")]
                self.events.push(TraceEvent::BatchPrefiltered {
                    windows: probes.len(),
                    candidates: candidates as usize,
                });
                accepted
            }
            None => self.score_exhaustive(&probes),
        };
        self.scoring += started.elapsed();
        self.batches += 1;
        self.max_batch = self.max_batch.max(batch.len());
        self.windows_scored += batch.len() as u64;
        #[cfg(feature = "tracelog")]
        {
            let devices: BTreeSet<DeviceId> = batch.iter().map(|p| p.device).collect();
            self.events
                .push(TraceEvent::BatchScored { windows: batch.len(), devices: devices.len() });
        }
        let mut decisions = Vec::with_capacity(batch.len());
        for (accepted_by, pending) in accepted.into_iter().zip(batch) {
            let state = self.devices.get_mut(&pending.device).expect("scored unknown device");
            state.history.push_back(accepted_by.clone());
            if state.history.len() > self.config.vote_k {
                state.history.pop_front();
            }
            let vote = majority_vote(state.history.iter().map(|set| set.as_slice()));
            decisions.push(WindowDecision {
                device: pending.device,
                start: pending.window.start,
                transaction_count: pending.window.transaction_count,
                features: pending.window.features,
                accepted_by,
                actual_users: pending.window.users,
                vote,
                queue_latency: pending.enqueued.elapsed(),
            });
        }
        decisions
    }

    /// Exhaustive stage: every profile scores every probe; returns each
    /// probe's accepted users, ascending.
    fn score_exhaustive(&self, probes: &[&SparseVector]) -> Vec<Vec<UserId>> {
        let entries: Vec<(&UserId, &UserProfile)> = self.profiles.iter().collect();
        // Fan profiles out across cores only when the kernel work dwarfs
        // the cost of spawning the scoped threads; small batches (linear
        // models especially, whose batched path is one dense GEMV) are
        // faster scored inline.
        let work: usize = entries
            .iter()
            .map(|(_, profile)| match profile.params().kernel {
                ocsvm::Kernel::Linear => probes.len(),
                _ => probes.len() * profile.support_vector_count(),
            })
            .sum();
        let score = |user: UserId, profile: &UserProfile| {
            if self.config.f32_scoring {
                // f32 → f64 widening is exact, so the `>= 0.0` acceptance
                // test below decides exactly as it would on the f32 values.
                // The f32 path skips the arena: its rows are transient.
                return profile
                    .batch_decision_values_f32(probes)
                    .into_iter()
                    .map(f64::from)
                    .collect();
            }
            match &self.arena {
                Some(arena) => profile.batch_decision_values_in(probes, arena, u64::from(user.0)),
                None => profile.batch_decision_values(probes),
            }
        };
        let values: Vec<Vec<f64>> = if work >= PARALLEL_WORK_THRESHOLD {
            parallel_map(&entries, |(&user, profile)| score(user, profile))
        } else {
            entries.iter().map(|(&user, profile)| score(user, profile)).collect()
        };
        (0..probes.len())
            .map(|j| {
                // BTreeMap iteration keeps the accepted set ascending,
                // exactly like the offline identifier's profile scan.
                entries
                    .iter()
                    .zip(&values)
                    .filter(|(_, vals)| vals[j] >= 0.0)
                    .map(|((&user, _), _)| user)
                    .collect()
            })
            .collect()
    }

    /// Exact rerank stage: each shortlisted (user, windows) group runs one
    /// batched exact scoring call over just that user's shortlisted
    /// windows; users outside a window's shortlist reject it. Returns each
    /// probe's accepted users, ascending.
    fn score_shortlisted(
        &self,
        probes: &[&SparseVector],
        shortlists: &[Vec<u32>],
    ) -> Vec<Vec<UserId>> {
        let index = &self.prefilter.as_ref().expect("shortlists imply a prefilter").index;
        // Regroup window-major shortlists into user-major window lists so
        // each profile keeps the batched-scoring amortization.
        let mut per_user: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (j, list) in shortlists.iter().enumerate() {
            for &slot in list {
                per_user.entry(slot).or_default().push(j);
            }
        }
        let items: Vec<(UserId, &UserProfile, Vec<usize>)> = per_user
            .into_iter()
            .map(|(slot, windows)| {
                let user = index.user_at(slot);
                let profile = self.profiles.get(&user).expect("indexed unknown user");
                (user, profile, windows)
            })
            .collect();
        let work: usize = items
            .iter()
            .map(|(_, profile, windows)| match profile.params().kernel {
                ocsvm::Kernel::Linear => windows.len(),
                _ => windows.len() * profile.support_vector_count(),
            })
            .sum();
        let score = |user: UserId, profile: &UserProfile, windows: &[usize]| {
            let sub: Vec<&SparseVector> = windows.iter().map(|&j| probes[j]).collect();
            if self.config.f32_scoring {
                // Same exact-widening argument as the exhaustive stage.
                return profile
                    .batch_decision_values_f32(&sub)
                    .into_iter()
                    .map(f64::from)
                    .collect();
            }
            match &self.arena {
                Some(arena) => profile.batch_decision_values_in(&sub, arena, u64::from(user.0)),
                None => profile.batch_decision_values(&sub),
            }
        };
        let values: Vec<Vec<f64>> = if work >= PARALLEL_WORK_THRESHOLD {
            parallel_map(&items, |(user, profile, windows)| score(*user, profile, windows))
        } else {
            items.iter().map(|(user, profile, windows)| score(*user, profile, windows)).collect()
        };
        let mut accepted: Vec<Vec<UserId>> = vec![Vec::new(); probes.len()];
        // Slots ascend through the BTreeMap, so each window's accepted
        // set fills in ascending user order — identical to the exhaustive
        // profile scan.
        for ((user, _, windows), vals) in items.iter().zip(&values) {
            for (&j, &v) in windows.iter().zip(vals) {
                if v >= 0.0 {
                    accepted[j].push(*user);
                }
            }
        }
        accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxylog::{AppTypeId, CategoryId, HttpAction, Reputation, SiteId, SubtypeId, UriScheme};
    use tracegen::{Scenario, TraceGenerator};
    use webprofiler::ProfileTrainer;

    fn tx_at(secs: i64, user: u32, device: u32) -> Transaction {
        Transaction {
            timestamp: Timestamp(secs),
            user: UserId(user),
            device: DeviceId(device),
            site: SiteId(0),
            action: HttpAction::Get,
            scheme: UriScheme::Http,
            category: CategoryId(0),
            subtype: SubtypeId(0),
            app_type: AppTypeId(0),
            reputation: Reputation::Minimal,
            private_destination: false,
        }
    }

    fn trained() -> (proxylog::Dataset, Vocabulary) {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        (dataset, vocab)
    }

    #[test]
    fn decisions_arrive_in_batches_and_finish_flushes_the_tail() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let config = EngineConfig { batch_windows: 16, ..EngineConfig::default() };
        let mut engine = StreamEngine::new(&profiles, &vocab, config);
        let mut bursts = Vec::new();
        for tx in dataset.transactions() {
            let decisions = engine.observe(*tx);
            if !decisions.is_empty() {
                assert!(decisions.len() >= 16, "partial batch of {}", decisions.len());
                bursts.push(decisions.len());
            }
        }
        let tail = engine.finish();
        assert!(!bursts.is_empty(), "no full batch ever fired");
        assert!(!tail.is_empty(), "finish flushed nothing");
        let stats = engine.stats();
        assert_eq!(stats.windows_scored, bursts.iter().sum::<usize>() as u64 + tail.len() as u64);
        assert_eq!(stats.windows_shed, 0);
        assert!(stats.max_batch >= 16);
        assert_eq!(stats.devices, dataset.devices().len());
    }

    #[test]
    fn backpressure_sheds_oldest_windows_per_device() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        // A huge batch threshold so nothing is scored while device 0 floods
        // the queue past its quota.
        let config = EngineConfig {
            batch_windows: usize::MAX,
            max_pending_per_device: 4,
            ..EngineConfig::default()
        };
        let mut engine = StreamEngine::new(&profiles, &vocab, config);
        // Non-overlapping 60 s windows, one transaction each, in order:
        // every new window closes the previous one.
        for i in 0..20 {
            let out = engine.observe(tx_at(i64::from(i) * 120, 0, 0));
            assert!(out.is_empty(), "nothing should be scored yet");
        }
        assert_eq!(engine.pending_windows(), 4, "quota bounds the queue");
        let stats = engine.stats();
        assert!(stats.windows_shed > 0);
        let decisions = engine.drain();
        assert_eq!(decisions.len(), 4);
        // The survivors are the newest windows.
        let starts: Vec<i64> = decisions.iter().map(|d| d.start.as_secs()).collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
        assert!(starts[0] >= 15 * 120, "oldest windows were shed first: {starts:?}");
    }

    #[test]
    fn drain_scores_partial_batches() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let mut engine = StreamEngine::new(&profiles, &vocab, EngineConfig::default());
        let device = dataset.devices()[0];
        let txs: Vec<Transaction> = dataset.for_device(device).copied().collect();
        for tx in &txs[..txs.len().min(200)] {
            let _ = engine.observe(*tx);
        }
        if engine.pending_windows() > 0 {
            let decisions = engine.drain();
            assert!(!decisions.is_empty());
        }
        assert_eq!(engine.pending_windows(), 0);
        // Draining an empty queue is a no-op.
        assert!(engine.drain().is_empty());
    }

    #[test]
    fn arena_charged_scoring_is_bit_identical_to_the_default_path() {
        let (dataset, vocab) = trained();
        // RBF profiles so scoring actually materializes kernel rows (linear
        // models collapse to a weight vector and bypass the arena).
        let (profiles, _) = ProfileTrainer::new(&vocab)
            .kernel(ocsvm::Kernel::Rbf { gamma: 0.05 })
            .max_training_windows(150)
            .train_all(&dataset);
        let config = EngineConfig { batch_windows: 16, ..EngineConfig::default() };
        let arena = ocsvm::KernelRowArena::with_budget(32 << 20);
        let mut plain = StreamEngine::new(&profiles, &vocab, config);
        let mut charged =
            StreamEngine::new(&profiles, &vocab, config).with_arena(std::sync::Arc::clone(&arena));
        let mut plain_decisions = Vec::new();
        let mut charged_decisions = Vec::new();
        for tx in dataset.transactions().iter().take(2_000) {
            plain_decisions.extend(plain.observe(*tx));
            charged_decisions.extend(charged.observe(*tx));
        }
        plain_decisions.extend(plain.finish());
        charged_decisions.extend(charged.finish());
        assert_eq!(plain_decisions.len(), charged_decisions.len());
        assert!(!charged_decisions.is_empty());
        for (a, b) in plain_decisions.iter().zip(&charged_decisions) {
            assert_eq!(a.device, b.device);
            assert_eq!(a.start, b.start);
            assert_eq!(a.accepted_by, b.accepted_by);
            assert_eq!(a.vote, b.vote);
        }
        let stats = arena.stats();
        assert!(stats.fills > 0, "non-linear scoring must charge rows to the arena");
        assert!(stats.bytes <= stats.budget, "arena budget respected");
    }

    #[test]
    fn prefiltered_engine_is_bit_identical_to_exhaustive() {
        let (dataset, vocab) = trained();
        // Default profiles are linear SVDD, and quick_test's 6 users fit in
        // the default shortlist — both legs of the equivalence argument.
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let config = EngineConfig { batch_windows: 16, ..EngineConfig::default() };
        let mut exhaustive = StreamEngine::new(&profiles, &vocab, config);
        let mut prefiltered =
            StreamEngine::new(&profiles, &vocab, config).with_prefilter(PrefilterConfig::default());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for tx in dataset.transactions() {
            a.extend(exhaustive.observe(*tx));
            b.extend(prefiltered.observe(*tx));
        }
        a.extend(exhaustive.finish());
        b.extend(prefiltered.finish());
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.device, y.device);
            assert_eq!(x.start, y.start);
            assert_eq!(x.accepted_by, y.accepted_by);
            assert_eq!(x.vote, y.vote);
        }
        let stats = prefiltered.stats();
        assert_eq!(stats.prefilter_windows, stats.windows_scored);
        assert!(stats.prefilter_candidates > 0);
        assert_eq!(stats.prefilter_mismatches, 0, "verify off never counts");
        assert_eq!(exhaustive.stats().prefilter_windows, 0);
    }

    #[test]
    fn verify_mode_confirms_equivalence_online() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let config = EngineConfig { batch_windows: 16, ..EngineConfig::default() };
        let mut engine = StreamEngine::new(&profiles, &vocab, config)
            .with_prefilter(PrefilterConfig { verify: true, ..PrefilterConfig::default() });
        for tx in dataset.transactions() {
            let _ = engine.observe(*tx);
        }
        let _ = engine.finish();
        let stats = engine.stats();
        assert!(stats.prefilter_windows > 0);
        assert_eq!(
            stats.prefilter_mismatches, 0,
            "linear profiles under a covering shortlist must agree with exhaustive scoring"
        );
    }

    #[test]
    #[should_panic(expected = "top_k must be positive")]
    fn zero_shortlist_size_is_rejected() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let _ = StreamEngine::new(&profiles, &vocab, EngineConfig::default())
            .with_prefilter(PrefilterConfig { top_k: 0, verify: false });
    }

    #[test]
    fn late_drops_survive_device_eviction() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let config =
            EngineConfig { batch_windows: usize::MAX, lateness_secs: 0, ..EngineConfig::default() };
        let mut engine = StreamEngine::new(&profiles, &vocab, config);
        // Advance device 0's watermark far past t = 0, then send a
        // straggler from t = 0: with zero lateness its windows are long
        // closed, so it must be dropped and counted.
        let _ = engine.observe(tx_at(10_000, 0, 0));
        let _ = engine.observe(tx_at(0, 0, 0));
        assert_eq!(engine.stats().late_dropped, 1);
        let _ = engine.evict_device(DeviceId(0));
        assert_eq!(
            engine.stats().late_dropped,
            1,
            "lifetime late-drop count must not vanish with the device"
        );
        assert_eq!(engine.stats().devices, 0);
    }

    #[test]
    fn evict_device_flushes_and_scores_its_tail() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let config = EngineConfig { batch_windows: usize::MAX, ..EngineConfig::default() };
        let mut engine = StreamEngine::new(&profiles, &vocab, config);
        let device = dataset.devices()[0];
        for tx in dataset.for_device(device).take(300) {
            let out = engine.observe(*tx);
            assert!(out.is_empty(), "batch threshold keeps everything pending");
        }
        let decisions = engine.evict_device(device);
        assert!(!decisions.is_empty(), "eviction must flush and score the open tail");
        assert!(decisions.iter().all(|d| d.device == device));
        assert_eq!(engine.stats().devices, 0);
        assert_eq!(engine.pending_windows(), 0);
        // Evicting an unknown device is a no-op.
        assert!(engine.evict_device(DeviceId(9_999)).is_empty());
    }

    #[test]
    #[should_panic(expected = "batch_windows must be positive")]
    fn zero_batch_size_is_rejected() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let config = EngineConfig { batch_windows: 0, ..EngineConfig::default() };
        let _ = StreamEngine::new(&profiles, &vocab, config);
    }

    #[cfg(feature = "tracelog")]
    #[test]
    fn tracelog_records_engine_events() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let config = EngineConfig { batch_windows: 8, ..EngineConfig::default() };
        let mut engine = StreamEngine::new(&profiles, &vocab, config);
        for tx in dataset.transactions() {
            let _ = engine.observe(*tx);
        }
        let _ = engine.finish();
        let events = engine.events();
        let opened = events.iter().filter(|e| matches!(e, TraceEvent::StreamOpened { .. })).count();
        assert_eq!(opened, dataset.devices().len());
        assert!(events.iter().any(|e| matches!(e, TraceEvent::WindowsClosed { .. })));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::BatchScored { .. })));
    }

    #[cfg(feature = "tracelog")]
    #[test]
    fn tracelog_records_prefilter_and_eviction_events() {
        let (dataset, vocab) = trained();
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let config = EngineConfig { batch_windows: 8, ..EngineConfig::default() };
        let mut engine =
            StreamEngine::new(&profiles, &vocab, config).with_prefilter(PrefilterConfig::default());
        let device = dataset.devices()[0];
        for tx in dataset.for_device(device).take(300) {
            let _ = engine.observe(*tx);
        }
        let _ = engine.evict_device(device);
        let events = engine.events();
        assert!(events.iter().any(|e| matches!(e, TraceEvent::BatchPrefiltered { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::StreamEvicted { device: d } if *d == device)));
    }
}
