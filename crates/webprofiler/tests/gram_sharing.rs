//! Verifies the shared-Gram grid search end to end: the kernel matrix is
//! computed exactly once per (user, kernel), and sharing it changes no cell
//! of the sweep.
//!
//! Everything lives in ONE `#[test]`: `GramMatrix::computations()` is a
//! process-wide counter, so concurrent tests in the same binary would
//! pollute each other's deltas. Integration tests run one process per file,
//! which keeps the deltas exact.

use ocsvm::{GramMatrix, Kernel, KernelKind};
use tracegen::{Scenario, TraceGenerator};
use webprofiler::{
    acceptance_ratio, compute_window_sets, ModelGridSearch, ModelKind, ProfileTrainer, Vocabulary,
    WindowConfig,
};

#[test]
fn grid_search_computes_each_gram_once_and_cells_match_legacy_path() {
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(60));
    let user = *sets.iter().max_by_key(|&(_, w)| w.len()).map(|(u, _)| u).unwrap();
    // usize::MAX disables ACCother subsampling so the legacy replication
    // below scores exactly the same window sets.
    let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::Svdd)
        .max_other_windows(usize::MAX);

    // (a) One user's sweep: exactly one Gram computation per kernel family,
    // not one per (kernel, regularization) cell.
    let before = GramMatrix::computations();
    let cells = search.run_user(&sets, user);
    let delta = GramMatrix::computations() - before;
    assert_eq!(
        delta,
        KernelKind::ALL.len() as u64,
        "run_user must compute one Gram matrix per kernel"
    );
    assert!(!cells.is_empty());

    // (b) The all-users optimization goes through the shared kernel-row
    // arena: it builds no per-user GramMatrix at all, fills every distinct
    // (user, kernel, row) at most once, and serves the regularization
    // ladder's repeated row reads from cache.
    let arena_search = search.clone().arena(ocsvm::KernelRowArena::with_budget(256 << 20));
    let before = GramMatrix::computations();
    let (best, stats) = arena_search.sweep_all(&sets);
    assert_eq!(
        GramMatrix::computations() - before,
        0,
        "the arena-backed sweep must not build GramMatrix objects"
    );
    // Distinct rows: per user, one Gram row per window for each of the 4
    // kernels, plus one cross row per window for the 3 non-linear kernels.
    let distinct_rows: u64 = sets
        .values()
        .map(|w| (w.len() * (KernelKind::ALL.len() + KernelKind::ALL.len() - 1)) as u64)
        .sum();
    assert!(
        stats.arena.fills <= distinct_rows,
        "each distinct row fills at most once: {} > {distinct_rows}",
        stats.arena.fills
    );
    assert!(stats.arena.fills <= stats.arena.misses);
    assert!(
        stats.arena.hits > stats.arena.fills,
        "the 15-value ladder must reuse cached rows (hits {}, fills {})",
        stats.arena.hits,
        stats.arena.fills
    );
    assert_eq!(stats.arena.evictions, 0, "budget is ample for the quick-test corpus");
    assert!(best.contains_key(&user), "most active user optimizes");
    assert_eq!(stats.chains, sets.len() * KernelKind::ALL.len());

    // (c) Cell parity with the legacy per-cell training path: retrain every
    // (kernel, regularization) combination without the shared Gram matrix
    // and recompute both acceptance ratios from scratch.
    let own = &sets[&user];
    let legacy: Vec<(KernelKind, f64, f64, f64)> = KernelKind::ALL
        .iter()
        .flat_map(|&kind| ModelGridSearch::PAPER_REGULARIZATIONS.iter().map(move |&c| (kind, c)))
        .filter_map(|(kind, regularization)| {
            let kernel = Kernel::default_for(kind, vocab.n_features());
            let trainer = ProfileTrainer::new(&vocab)
                .window(WindowConfig::PAPER_DEFAULT)
                .kind(ModelKind::Svdd)
                .kernel(kernel)
                .regularization(regularization);
            let profile = trainer.train_from_vectors(user, own).ok()?;
            let acc_self = acceptance_ratio(&profile, own);
            let others: Vec<f64> = sets
                .iter()
                .filter(|&(&u, _)| u != user)
                .map(|(_, w)| acceptance_ratio(&profile, w))
                .collect();
            let acc_other = others.iter().sum::<f64>() / others.len() as f64;
            Some((kind, regularization, acc_self, acc_other))
        })
        .collect();

    assert_eq!(cells.len(), legacy.len(), "same combinations must train on both paths");
    for (cell, &(kind, regularization, acc_self, acc_other)) in cells.iter().zip(&legacy) {
        assert_eq!(cell.kernel, kind);
        assert_eq!(cell.regularization, regularization);
        assert!(
            (cell.summary.acc_self - acc_self).abs() < 1e-9,
            "ACCself diverged for {kind:?} c={regularization}: {} vs {acc_self}",
            cell.summary.acc_self
        );
        assert!(
            (cell.summary.acc_other - acc_other).abs() < 1e-9,
            "ACCother diverged for {kind:?} c={regularization}: {} vs {acc_other}",
            cell.summary.acc_other
        );
    }
}
