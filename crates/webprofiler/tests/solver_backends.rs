//! Solver-backend routing through the model grid sweep: seeded
//! determinism of the approximate backends, the `Auto` calibration
//! policy's two extremes, per-cell overrides, and the warm-start
//! interaction with exact and approximate backends.

use ocsvm::{ApproxParams, Kernel, KernelKind, KernelRowArena, SolverBackend};
use proxylog::UserId;
use std::collections::BTreeMap;
use tracegen::{Scenario, TraceGenerator};
use webprofiler::{
    compute_window_sets, ModelGridCell, ModelGridSearch, ModelKind, SweepBackend, Vocabulary,
    WindowConfig, WindowSets,
};

/// Small approximate-backend parameters so the quick-test corpus (≤ 40
/// windows per user here) actually shards / subsamples instead of
/// degenerating to the exact solve.
fn small_approx() -> ApproxParams {
    ApproxParams { ensemble_shard: 16, fw_sample: 24, ..ApproxParams::default() }
}

fn fixture() -> (Vocabulary, WindowSets) {
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(40));
    (vocab, sets)
}

fn search<'a>(vocab: &'a Vocabulary, backend: SweepBackend) -> ModelGridSearch<'a> {
    ModelGridSearch::new(vocab, WindowConfig::PAPER_DEFAULT, ModelKind::Svdd)
        .regularizations(vec![0.9, 0.5, 0.1])
        .solver_backend(backend)
        .approx_params(small_approx())
        .arena(KernelRowArena::with_budget(64 << 20))
}

fn assert_cells_bitwise_equal(
    a: &BTreeMap<UserId, Vec<ModelGridCell>>,
    b: &BTreeMap<UserId, Vec<ModelGridCell>>,
    tag: &str,
) {
    assert_eq!(a.len(), b.len(), "{tag}: user sets differ");
    for (user, cells) in a {
        let other = &b[user];
        assert_eq!(cells.len(), other.len(), "{tag} {user}: cell counts differ");
        for (x, y) in cells.iter().zip(other) {
            assert_eq!(x.kernel, y.kernel, "{tag} {user}");
            assert_eq!(x.regularization, y.regularization, "{tag} {user}");
            // Bit-exact, not approximately equal.
            assert_eq!(x.summary.acc_self, y.summary.acc_self, "{tag} {user}");
            assert_eq!(x.summary.acc_other, y.summary.acc_other, "{tag} {user}");
        }
    }
}

#[test]
fn approximate_backends_are_bit_identical_across_runs_and_workers() {
    let (vocab, sets) = fixture();
    for backend in [SolverBackend::EnsembleOneData, SolverBackend::SampledFw] {
        let reference =
            search(&vocab, SweepBackend::Fixed(backend)).workers(1).sweep_cells(&sets).0;
        // A fixed seed must give the same models run-to-run and at any
        // sweep parallelism: cells are solved independently, so thread
        // count may change the schedule but never the arithmetic.
        for workers in [1usize, 2, 8] {
            let (cells, stats) =
                search(&vocab, SweepBackend::Fixed(backend)).workers(workers).sweep_cells(&sets);
            assert_eq!(stats.workers, workers, "{backend:?}");
            assert_eq!(stats.exact_cells, 0, "{backend:?}: every cell routed approximate");
            assert_eq!(stats.approx_cells, stats.cells, "{backend:?}");
            assert_cells_bitwise_equal(&reference, &cells, &format!("{backend:?} x{workers}"));
        }
    }
}

#[test]
fn auto_with_impossible_tolerance_is_bitwise_the_exact_sweep() {
    let (vocab, sets) = fixture();
    let (exact, exact_stats) =
        search(&vocab, SweepBackend::Fixed(SolverBackend::ExactSmo)).sweep_cells(&sets);
    // ACC differences live in [-2, 2], so a tolerance of -10 makes every
    // chain's calibration fall back to exact SMO.
    let (auto, stats) =
        search(&vocab, SweepBackend::Auto { cheap: SolverBackend::SampledFw, tolerance: -10.0 })
            .sweep_cells(&sets);
    assert_cells_bitwise_equal(&exact, &auto, "auto(-10) vs exact");
    assert!(stats.auto_fallbacks > 0, "every calibrated chain must fall back");
    assert_eq!(stats.approx_cells, 0);
    assert_eq!(stats.exact_cells, stats.cells);
    assert_eq!(stats.cells, exact_stats.cells);
}

#[test]
fn auto_with_generous_tolerance_is_bitwise_the_cheap_sweep() {
    let (vocab, sets) = fixture();
    let cheap = SolverBackend::EnsembleOneData;
    let (fixed, _) = search(&vocab, SweepBackend::Fixed(cheap)).sweep_cells(&sets);
    // A tolerance of 10 can never be exceeded, so every chain keeps the
    // cheap backend and the sweep equals the fixed-cheap sweep bitwise.
    let (auto, stats) =
        search(&vocab, SweepBackend::Auto { cheap, tolerance: 10.0 }).sweep_cells(&sets);
    assert_cells_bitwise_equal(&fixed, &auto, "auto(10) vs cheap");
    assert_eq!(stats.auto_fallbacks, 0, "no chain may fall back");
    assert_eq!(stats.exact_cells, 0);
    assert_eq!(stats.approx_cells, stats.cells);
}

#[test]
fn per_cell_overrides_route_only_the_matching_cells() {
    let (vocab, sets) = fixture();
    let (exact, _) =
        search(&vocab, SweepBackend::Fixed(SolverBackend::ExactSmo)).sweep_cells(&sets);
    let overridden = (KernelKind::Linear, 0.5);
    let (mixed, stats) = search(
        &vocab,
        SweepBackend::PerCell {
            default: SolverBackend::ExactSmo,
            overrides: vec![(overridden.0, overridden.1, SolverBackend::SampledFw)],
        },
    )
    .sweep_cells(&sets);
    assert!(stats.approx_cells > 0, "the override must route some cells");
    assert!(stats.exact_cells > 0, "non-matching cells stay exact");
    assert_eq!(stats.exact_cells + stats.approx_cells, stats.cells);
    // Cells outside the override are bit-identical to the all-exact sweep.
    for (user, cells) in &mixed {
        for (cell, reference) in cells.iter().zip(&exact[user]) {
            assert_eq!(cell.kernel, reference.kernel, "{user}");
            assert_eq!(cell.regularization, reference.regularization, "{user}");
            if (cell.kernel, cell.regularization) != overridden {
                assert_eq!(cell.summary.acc_self, reference.summary.acc_self, "{user}");
                assert_eq!(cell.summary.acc_other, reference.summary.acc_other, "{user}");
            }
        }
    }
}

#[test]
fn warm_started_exact_sweep_selects_like_the_cold_sweep() {
    let (vocab, sets) = fixture();
    // A fine ladder keeps each seed near the next cell's optimum; coarse
    // ladders let seeded solves stop at a different point of the KKT
    // tolerance band and flip knife-edge acceptance decisions.
    let ladder = vec![0.9, 0.7, 0.5, 0.3, 0.1];
    let cold = search(&vocab, SweepBackend::Fixed(SolverBackend::ExactSmo))
        .regularizations(ladder.clone())
        .warm_start(false)
        .sweep_all(&sets);
    let warm = search(&vocab, SweepBackend::Fixed(SolverBackend::ExactSmo))
        .regularizations(ladder.clone())
        .warm_start(true)
        .sweep_all(&sets);
    assert!(warm.1.warm_cells > 0, "ladder cells after the first must be seeded");
    // Seeding moves the solver's stopping point inside its KKT tolerance
    // band, so knife-edge cells may score differently — but judged by the
    // cold sweep's own scores the warm selection must be as good.
    let cold_cells = search(&vocab, SweepBackend::Fixed(SolverBackend::ExactSmo))
        .regularizations(ladder)
        .warm_start(false)
        .sweep_cells(&sets)
        .0;
    for (user, params) in &warm.0 {
        let cells = &cold_cells[user];
        let best = cells.iter().map(|c| c.summary.acc()).fold(f64::NEG_INFINITY, f64::max);
        let chosen = cells
            .iter()
            .find(|c| {
                Kernel::default_for(c.kernel, vocab.n_features()) == params.kernel
                    && c.regularization == params.regularization
            })
            .map(|c| c.summary.acc())
            .unwrap_or(f64::NEG_INFINITY);
        assert!(chosen >= best - 0.1, "{user}: warm pick acc {chosen} trails cold best {best}");
    }
    assert_eq!(cold.0.len(), warm.0.len());
}

#[test]
fn warm_start_is_ignored_by_approximate_backends() {
    let (vocab, sets) = fixture();
    for backend in [SolverBackend::EnsembleOneData, SolverBackend::SampledFw] {
        let (cold, _) =
            search(&vocab, SweepBackend::Fixed(backend)).warm_start(false).sweep_cells(&sets);
        let (warm, stats) =
            search(&vocab, SweepBackend::Fixed(backend)).warm_start(true).sweep_cells(&sets);
        // The approximate solvers discard α seeds, so turning warm start
        // on must not change a single bit — and no cell counts as warm.
        assert_cells_bitwise_equal(&cold, &warm, &format!("{backend:?} warm vs cold"));
        assert_eq!(stats.warm_cells, 0, "{backend:?}: approximate cells never count warm");
        assert_eq!(stats.cold_cells, stats.cells, "{backend:?}");
    }
}
