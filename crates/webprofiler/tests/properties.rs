//! Property-based tests for the profiling pipeline: feature-extraction
//! bounds, window-aggregation algebra, streaming/batch equivalence and
//! metric invariants over randomized transaction sets.

use proptest::prelude::*;
use proxylog::{
    AppTypeId, CategoryId, DeviceId, HttpAction, Reputation, SiteId, SubtypeId, Taxonomy,
    Timestamp, Transaction, UriScheme, UserId,
};
use webprofiler::{
    acceptance_ratio, aggregate_window, auc, extract_transaction, roc_curve, FrequencyProfile,
    ProfileTrainer, Vocabulary, WindowAggregator, WindowConfig, WindowKey, WindowStream,
};

fn vocab() -> Vocabulary {
    Vocabulary::new(Taxonomy::paper_scale())
}

fn transaction_strategy() -> impl Strategy<Value = Transaction> {
    (
        0i64..100_000,
        prop::sample::select(HttpAction::ALL.to_vec()),
        prop::sample::select(UriScheme::ALL.to_vec()),
        0u16..105,
        0u16..257,
        0u16..464,
        prop::sample::select(Reputation::ALL.to_vec()),
        any::<bool>(),
    )
        .prop_map(|(secs, action, scheme, cat, sub, app, rep, private)| Transaction {
            timestamp: Timestamp(secs),
            user: UserId(0),
            device: DeviceId(0),
            site: SiteId(0),
            action,
            scheme,
            category: CategoryId(cat),
            subtype: SubtypeId(sub),
            app_type: AppTypeId(app),
            reputation: rep,
            private_destination: private,
        })
}

fn sorted_transactions(max: usize) -> impl Strategy<Value = Vec<Transaction>> {
    prop::collection::vec(transaction_strategy(), 1..max).prop_map(|mut txs| {
        txs.sort_by_key(|tx| tx.timestamp);
        txs
    })
}

fn window_config_strategy() -> impl Strategy<Value = WindowConfig> {
    (1u32..600, 1u32..600).prop_map(|(a, b)| {
        let (duration, shift) = if a >= b { (a, b) } else { (b, a) };
        WindowConfig::new(duration, shift).expect("shift <= duration by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn features_are_bounded(tx in transaction_strategy()) {
        let v = vocab();
        let features = extract_transaction(&v, &tx);
        for (column, value) in features.iter() {
            prop_assert!((column as usize) < v.n_features());
            prop_assert!((0.0..=1.0).contains(&value), "column {column} = {value}");
        }
    }

    #[test]
    fn aggregation_is_bounded_and_order_invariant(mut txs in sorted_transactions(20)) {
        let v = vocab();
        let a = aggregate_window(&v, &txs);
        for (column, value) in a.iter() {
            prop_assert!((column as usize) < v.n_features());
            prop_assert!((0.0..=1.0).contains(&value));
        }
        txs.reverse();
        prop_assert_eq!(aggregate_window(&v, &txs), a);
    }

    #[test]
    fn aggregation_is_idempotent_on_duplicates(tx in transaction_strategy(), n in 1usize..10) {
        // A window of n identical transactions equals the single-tx vector.
        let v = vocab();
        let window = vec![tx; n];
        prop_assert_eq!(aggregate_window(&v, &window), extract_transaction(&v, &tx));
    }

    #[test]
    fn binary_union_grows_with_more_transactions(txs in sorted_transactions(15)) {
        // Adding transactions can only set more binary columns.
        let v = vocab();
        let partial = aggregate_window(&v, &txs[..txs.len() / 2]);
        let full = aggregate_window(&v, &txs);
        for (column, value) in partial.iter() {
            if value == 1.0 && matches!(v.column_kind(column), webprofiler::ColumnKind::Binary) {
                prop_assert_eq!(full.get(column), 1.0, "column {} lost", column);
            }
        }
    }

    #[test]
    fn every_transaction_lands_in_expected_window_count(
        txs in sorted_transactions(30),
        shift in 1u32..120,
        multiplier in 1u32..6,
    ) {
        // When S divides D, each transaction belongs to exactly D/S
        // windows; the sum of window populations must reflect that.
        let v = vocab();
        let (d, s) = (shift * multiplier, shift);
        let config = WindowConfig::new(d, s).expect("valid by construction");
        let aggregator = WindowAggregator::new(&v, config);
        let windows = aggregator.windows_over(&txs, WindowKey::User(UserId(0)));
        let total: usize = windows.iter().map(|w| w.transaction_count).sum();
        prop_assert_eq!(total, txs.len() * (d / s) as usize);
    }

    #[test]
    fn stream_equals_batch(
        txs in sorted_transactions(60),
        config in window_config_strategy(),
    ) {
        let v = vocab();
        let aggregator = WindowAggregator::new(&v, config);
        let batch = aggregator.windows_over(&txs, WindowKey::User(UserId(0)));
        let mut stream = WindowStream::new(&v, config, WindowKey::User(UserId(0)));
        let mut streamed = Vec::new();
        for tx in &txs {
            streamed.extend(stream.push(*tx));
        }
        streamed.extend(stream.flush());
        prop_assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(&batch) {
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(&a.features, &b.features);
            prop_assert_eq!(a.transaction_count, b.transaction_count);
        }
    }

    #[test]
    fn trained_profile_acceptance_is_a_ratio(txs in sorted_transactions(120)) {
        let v = vocab();
        let trainer = ProfileTrainer::new(&v).max_training_windows(100);
        let aggregator = WindowAggregator::new(&v, WindowConfig::PAPER_DEFAULT);
        let windows: Vec<_> = aggregator
            .windows_over(&txs, WindowKey::User(UserId(0)))
            .into_iter()
            .map(|w| w.features)
            .collect();
        prop_assume!(windows.len() >= 3);
        let profile = trainer.train_from_vectors(UserId(0), &windows).expect("trains");
        let ratio = acceptance_ratio(&profile, &windows);
        prop_assert!((0.0..=1.0).contains(&ratio));
        // A window far outside the feature space is never accepted more
        // than the training data itself.
        let far = ocsvm::SparseVector::from_pairs(vec![(0, 100.0), (1, -100.0)]).unwrap();
        prop_assert!(!profile.accepts(&far), "far-away window accepted");
    }

    #[test]
    fn roc_auc_is_within_unit_interval(txs in sorted_transactions(120)) {
        let v = vocab();
        let aggregator = WindowAggregator::new(&v, WindowConfig::PAPER_DEFAULT);
        let windows: Vec<_> = aggregator
            .windows_over(&txs, WindowKey::User(UserId(0)))
            .into_iter()
            .map(|w| w.features)
            .collect();
        prop_assume!(windows.len() >= 6);
        let (own, other) = windows.split_at(windows.len() / 2);
        let profile = ProfileTrainer::new(&v)
            .max_training_windows(60)
            .train_from_vectors(UserId(0), own)
            .expect("trains");
        let points = roc_curve(&profile, own, other);
        let area = auc(&points);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&area), "AUC = {area}");
    }

    #[test]
    fn frequency_baseline_bounded_decision(txs in sorted_transactions(60)) {
        let v = vocab();
        let aggregator = WindowAggregator::new(&v, WindowConfig::PAPER_DEFAULT);
        let windows: Vec<_> = aggregator
            .windows_over(&txs, WindowKey::User(UserId(0)))
            .into_iter()
            .map(|w| w.features)
            .collect();
        prop_assume!(!windows.is_empty());
        let baseline = FrequencyProfile::train(UserId(0), &windows, 0.1).expect("trains");
        for w in &windows {
            // Cosine similarity minus a cosine threshold stays in [-2, 2].
            let dv = baseline.decision_value(w);
            prop_assert!((-2.0..=2.0).contains(&dv), "decision {dv}");
        }
    }
}
