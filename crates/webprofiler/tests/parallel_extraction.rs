//! The parallel per-user feature-extraction fan-out is bit-identical to
//! the serial order.
//!
//! `ProfileTrainer::training_vectors_all` routes `WindowAggregator`
//! extraction and `aggregate_window` across users through the shared
//! thread pool; nothing about scheduling may leak into the features. The
//! regression here pins the parallel result against a plain serial loop
//! (`SparseVector` implements exact `PartialEq`, so this is a
//! byte-for-byte comparison), and checks `train_all` still covers every
//! user after being rerouted through the two-stage fan-out.

use tracegen::{Scenario, TraceGenerator};
use webprofiler::{ProfileTrainer, Vocabulary};

#[test]
fn parallel_extraction_equals_serial_extraction() {
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let users = dataset.users();
    assert!(users.len() > 1, "need several users to exercise the fan-out");

    for trainer in
        [ProfileTrainer::new(&vocab), ProfileTrainer::new(&vocab).max_training_windows(37)]
    {
        let serial: Vec<_> =
            users.iter().map(|&user| trainer.training_vectors(&dataset, user)).collect();
        let parallel = trainer.training_vectors_all(&dataset, &users);
        assert_eq!(serial, parallel, "parallel extraction diverged from serial order");
    }
}

#[test]
fn train_all_still_covers_every_user_after_fanout_rerouting() {
    let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
    let vocab = Vocabulary::new(dataset.taxonomy().clone());
    let trainer = ProfileTrainer::new(&vocab).max_training_windows(100);
    let (profiles, errors) = trainer.train_all(&dataset);
    assert_eq!(profiles.len() + errors.len(), dataset.users().len());
    assert!(!profiles.is_empty());
    for (user, profile) in &profiles {
        assert_eq!(profile.user(), *user);
        // The profile trained from exactly the serially extracted vectors.
        let vectors = trainer.training_vectors(&dataset, *user);
        assert_eq!(profile.training_windows(), vectors.len());
    }
}
