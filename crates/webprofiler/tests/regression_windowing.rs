//! Pinned replay of the checked-in proptest regression seed.
//!
//! `properties.proptest-regressions` records a 15-transaction input that
//! once failed a property in `properties.rs`. The offline proptest stand-in
//! (see `vendor/proptest`) uses its own RNG and cannot replay upstream seed
//! files, so the case is pinned here as plain tests instead: the exact
//! transactions are rebuilt verbatim and driven through every property that
//! takes a bare transaction list, plus a sweep over the window
//! configurations the shrunk arguments could have covered. All of these
//! pass at the current code state (the windowing grid/jump/retention logic
//! was audited line by line alongside); the tests keep it that way.

use proxylog::{
    AppTypeId, CategoryId, DeviceId, HttpAction, Reputation, SiteId, SubtypeId, Taxonomy,
    Timestamp, Transaction, UriScheme, UserId,
};
use webprofiler::{
    acceptance_ratio, aggregate_window, auc, roc_curve, FrequencyProfile, ProfileTrainer,
    Vocabulary, WindowAggregator, WindowConfig, WindowKey,
};

#[allow(clippy::too_many_arguments)]
fn tx(
    secs: i64,
    action: HttpAction,
    scheme: UriScheme,
    cat: u16,
    sub: u16,
    app: u16,
    rep: Reputation,
    private: bool,
) -> Transaction {
    Transaction {
        timestamp: Timestamp(secs),
        user: UserId(0),
        device: DeviceId(0),
        site: SiteId(0),
        action,
        scheme,
        category: CategoryId(cat),
        subtype: SubtypeId(sub),
        app_type: AppTypeId(app),
        reputation: rep,
        private_destination: private,
    }
}

fn regression_txs() -> Vec<Transaction> {
    use HttpAction::*;
    use Reputation::*;
    use UriScheme::*;
    vec![
        tx(0, Connect, Http, 1, 126, 1, Unverified, true),
        tx(60, Get, Https, 2, 6, 2, Minimal, true),
        tx(163, Get, Https, 91, 6, 226, Medium, true),
        tx(14521, Connect, Https, 82, 58, 202, High, true),
        tx(23631, Head, Https, 33, 33, 358, Medium, true),
        tx(24838, Post, Http, 37, 97, 205, Unverified, true),
        tx(45169, Connect, Http, 23, 93, 276, High, true),
        tx(45210, Connect, Http, 0, 101, 0, Minimal, false),
        tx(47697, Connect, Http, 42, 22, 82, Minimal, true),
        tx(56330, Head, Https, 104, 21, 106, Unverified, false),
        tx(65816, Connect, Http, 41, 193, 85, Unverified, false),
        tx(79599, Head, Https, 48, 147, 235, High, false),
        tx(81150, Head, Https, 93, 79, 36, High, true),
        tx(89681, Connect, Https, 84, 120, 50, High, true),
        tx(93992, Post, Http, 65, 136, 189, Minimal, true),
    ]
}

#[test]
fn replay_aggregation_bounded_order_invariant() {
    let v = Vocabulary::new(Taxonomy::paper_scale());
    let mut txs = regression_txs();
    let a = aggregate_window(&v, &txs);
    for (column, value) in a.iter() {
        assert!((column as usize) < v.n_features(), "column {column} out of vocab");
        assert!((0.0..=1.0).contains(&value), "column {column} = {value}");
    }
    txs.reverse();
    assert_eq!(aggregate_window(&v, &txs), a, "order dependence");
}

#[test]
fn replay_trained_profile_acceptance() {
    let v = Vocabulary::new(Taxonomy::paper_scale());
    let txs = regression_txs();
    let trainer = ProfileTrainer::new(&v).max_training_windows(100);
    let aggregator = WindowAggregator::new(&v, WindowConfig::PAPER_DEFAULT);
    let windows: Vec<_> = aggregator
        .windows_over(&txs, WindowKey::User(UserId(0)))
        .into_iter()
        .map(|w| w.features)
        .collect();
    assert!(windows.len() >= 3, "assume fails: {}", windows.len());
    let profile = trainer.train_from_vectors(UserId(0), &windows).expect("trains");
    let ratio = acceptance_ratio(&profile, &windows);
    assert!((0.0..=1.0).contains(&ratio), "ratio {ratio}");
    let far = ocsvm::SparseVector::from_pairs(vec![(0, 100.0), (1, -100.0)]).unwrap();
    assert!(!profile.accepts(&far), "far-away window accepted");
}

#[test]
fn replay_roc_auc() {
    let v = Vocabulary::new(Taxonomy::paper_scale());
    let txs = regression_txs();
    let aggregator = WindowAggregator::new(&v, WindowConfig::PAPER_DEFAULT);
    let windows: Vec<_> = aggregator
        .windows_over(&txs, WindowKey::User(UserId(0)))
        .into_iter()
        .map(|w| w.features)
        .collect();
    assert!(windows.len() >= 6, "assume fails: {}", windows.len());
    let (own, other) = windows.split_at(windows.len() / 2);
    let profile = ProfileTrainer::new(&v)
        .max_training_windows(60)
        .train_from_vectors(UserId(0), own)
        .expect("trains");
    let points = roc_curve(&profile, own, other);
    let area = auc(&points);
    assert!((0.0..=1.0 + 1e-9).contains(&area), "AUC = {area}");
}

#[test]
fn replay_frequency_baseline() {
    let v = Vocabulary::new(Taxonomy::paper_scale());
    let txs = regression_txs();
    let aggregator = WindowAggregator::new(&v, WindowConfig::PAPER_DEFAULT);
    let windows: Vec<_> = aggregator
        .windows_over(&txs, WindowKey::User(UserId(0)))
        .into_iter()
        .map(|w| w.features)
        .collect();
    assert!(!windows.is_empty());
    let baseline = FrequencyProfile::train(UserId(0), &windows, 0.1).expect("trains");
    for w in &windows {
        let dv = baseline.decision_value(w);
        assert!((-2.0..=2.0).contains(&dv), "decision {dv}");
    }
}

#[test]
fn replay_window_count_sweep() {
    // every_transaction_lands_in_expected_window_count takes extra shrunk
    // args we do not have; sweep plausible (shift, multiplier) combos.
    let v = Vocabulary::new(Taxonomy::paper_scale());
    let txs = regression_txs();
    for shift in 1u32..120 {
        for multiplier in 1u32..6 {
            let (d, s) = (shift * multiplier, shift);
            let config = WindowConfig::new(d, s).expect("valid");
            let aggregator = WindowAggregator::new(&v, config);
            let windows = aggregator.windows_over(&txs, WindowKey::User(UserId(0)));
            let total: usize = windows.iter().map(|w| w.transaction_count).sum();
            assert_eq!(
                total,
                txs.len() * (d / s) as usize,
                "shift={shift} multiplier={multiplier}"
            );
        }
    }
}

#[test]
fn replay_stream_equals_batch_sweep() {
    use webprofiler::WindowStream;
    let v = Vocabulary::new(Taxonomy::paper_scale());
    let txs = regression_txs();
    for (d, s) in [(60u32, 30u32), (60, 60), (599, 1), (120, 7), (300, 150), (90, 45)] {
        let config = WindowConfig::new(d, s).expect("valid");
        let aggregator = WindowAggregator::new(&v, config);
        let batch = aggregator.windows_over(&txs, WindowKey::User(UserId(0)));
        let mut stream = WindowStream::new(&v, config, WindowKey::User(UserId(0)));
        let mut streamed = Vec::new();
        for tx in &txs {
            streamed.extend(stream.push(*tx));
        }
        streamed.extend(stream.flush());
        assert_eq!(streamed.len(), batch.len(), "d={d} s={s}");
        for (a, b) in streamed.iter().zip(&batch) {
            assert_eq!(a.start, b.start, "d={d} s={s}");
            assert_eq!(a.transaction_count, b.transaction_count, "d={d} s={s}");
            assert_eq!(&a.features, &b.features, "d={d} s={s}");
        }
    }
}
