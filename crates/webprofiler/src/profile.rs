//! User profiles: one trained one-class model per user.

use ocsvm::{Kernel, OcSvmModel, OneClassModel, SparseVector, SvddModel, TrainDiagnostics};
use proxylog::UserId;
use std::fmt;

use crate::window::WindowConfig;

/// Which one-class classifier family a profile uses (the paper evaluates
/// both throughout Sect. V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ModelKind {
    /// ν-One-Class SVM (Sect. II-A).
    OcSvm,
    /// Support Vector Data Description (Sect. II-B).
    Svdd,
}

impl ModelKind {
    /// Both families.
    pub const ALL: [ModelKind; 2] = [ModelKind::OcSvm, ModelKind::Svdd];
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelKind::OcSvm => write!(f, "OC-SVM"),
            ModelKind::Svdd => write!(f, "SVDD"),
        }
    }
}

/// Hyper-parameters of one profile: the classifier family, its kernel, and
/// the regularization value (`ν` for OC-SVM, `C` for SVDD; the two are
/// related by `C = 1/(νl)`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProfileParams {
    /// Classifier family.
    pub kind: ModelKind,
    /// Kernel function.
    pub kernel: Kernel,
    /// `ν` (OC-SVM) or `C` (SVDD).
    pub regularization: f64,
}

impl fmt::Display for ProfileParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let param = match self.kind {
            ModelKind::OcSvm => "nu",
            ModelKind::Svdd => "C",
        };
        write!(f, "{} {} {param}={}", self.kind, self.kernel, self.regularization)
    }
}

#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub(crate) enum ProfileModel {
    OcSvm(OcSvmModel),
    Svdd(SvddModel),
}

/// A trained profile of one user: apply it to transaction-window feature
/// vectors with [`UserProfile::accepts`].
///
/// Built by [`ProfileTrainer`](crate::ProfileTrainer).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UserProfile {
    pub(crate) user: UserId,
    pub(crate) params: ProfileParams,
    pub(crate) window: WindowConfig,
    pub(crate) model: ProfileModel,
    pub(crate) training_windows: usize,
}

impl UserProfile {
    /// The user this profile models.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The hyper-parameters the profile was trained with.
    pub fn params(&self) -> ProfileParams {
        self.params
    }

    /// The window configuration the profile expects its inputs to use.
    pub fn window_config(&self) -> WindowConfig {
        self.window
    }

    /// Number of window feature vectors used for training.
    pub fn training_windows(&self) -> usize {
        self.training_windows
    }

    /// Signed decision value for a window feature vector (`>= 0` accepts).
    pub fn decision_value(&self, features: &SparseVector) -> f64 {
        match &self.model {
            ProfileModel::OcSvm(m) => m.decision_value(features),
            ProfileModel::Svdd(m) => m.decision_value(features),
        }
    }

    /// Whether the profile accepts the window as behavior of its user.
    pub fn accepts(&self, features: &SparseVector) -> bool {
        self.decision_value(features) >= 0.0
    }

    /// Decision values for a whole window micro-batch, amortizing kernel
    /// work across the batch (see [`OcSvmModel::batch_decision_values`]):
    /// non-linear kernels materialize one kernel row per support vector,
    /// the linear kernel runs one dense-weight GEMV. Every value is
    /// bit-identical to [`decision_value`](Self::decision_value) on the
    /// same window, and the path works for deserialized profiles too.
    pub fn batch_decision_values(&self, features: &[&SparseVector]) -> Vec<f64> {
        match &self.model {
            ProfileModel::OcSvm(m) => m.batch_decision_values(features),
            ProfileModel::Svdd(m) => m.batch_decision_values(features),
        }
    }

    /// Single-precision decision values for a window micro-batch (see
    /// [`OcSvmModel::batch_decision_values_f32`]): kernel rows and the
    /// linear GEMV run in `f32` panels, halving memory traffic and
    /// doubling SIMD lane width. **Not** bit-identical to
    /// [`batch_decision_values`](Self::batch_decision_values) — values
    /// carry single-precision rounding, and accept/reject decisions
    /// (`>= 0.0`) can flip for windows whose double-precision value sits
    /// within that rounding of zero. Opt-in only; the `f64` path stays
    /// the default everywhere.
    pub fn batch_decision_values_f32(&self, features: &[&SparseVector]) -> Vec<f32> {
        match &self.model {
            ProfileModel::OcSvm(m) => m.batch_decision_values_f32(features),
            ProfileModel::Svdd(m) => m.batch_decision_values_f32(features),
        }
    }

    /// Support-vector count of the underlying model.
    pub fn support_vector_count(&self) -> usize {
        match &self.model {
            ProfileModel::OcSvm(m) => m.support_vector_count(),
            ProfileModel::Svdd(m) => m.support_vector_count(),
        }
    }

    /// The affine decision terms of a linear-kernel profile (`None` for
    /// non-linear kernels) — the weight/bias export the candidate
    /// prefilter indexes (see [`CandidateIndex`](crate::CandidateIndex)
    /// and [`ocsvm::LinearDecisionTerms`]).
    pub fn linear_decision_terms(&self) -> Option<ocsvm::LinearDecisionTerms> {
        match &self.model {
            ProfileModel::OcSvm(m) => m.linear_decision_terms(),
            ProfileModel::Svdd(m) => m.linear_decision_terms(),
        }
    }

    /// Sorted union of the feature columns the profile's decision
    /// function reads — the category-coverage set behind
    /// [`ProfileSketch`](crate::ProfileSketch).
    pub fn support_column_union(&self) -> Vec<u32> {
        match &self.model {
            ProfileModel::OcSvm(m) => m.support_column_union(),
            ProfileModel::Svdd(m) => m.support_column_union(),
        }
    }

    /// Solver diagnostics recorded at training time.
    pub fn diagnostics(&self) -> TrainDiagnostics {
        match &self.model {
            ProfileModel::OcSvm(m) => m.diagnostics(),
            ProfileModel::Svdd(m) => m.diagnostics(),
        }
    }

    /// Solver backend the underlying model was trained with (recorded in
    /// the profile and preserved across serialization).
    pub fn solver_backend(&self) -> ocsvm::SolverBackend {
        match &self.model {
            ProfileModel::OcSvm(m) => m.solver_backend(),
            ProfileModel::Svdd(m) => m.solver_backend(),
        }
    }

    /// Decision values over the profile's training set, read from the
    /// shared kernel-row source the profile was trained with (a
    /// [`ocsvm::GramMatrix`] or arena-backed [`ocsvm::ArenaGram`]; see
    /// [`OcSvmModel::training_decision_values`]). `None` when the rows do
    /// not match or the model was deserialized.
    pub(crate) fn training_decision_values<G: ocsvm::KernelRows>(
        &self,
        gram: &G,
    ) -> Option<Vec<f64>> {
        match &self.model {
            ProfileModel::OcSvm(m) => m.training_decision_values(gram),
            ProfileModel::Svdd(m) => m.training_decision_values(gram),
        }
    }

    /// Decision values over a fixed probe set via a shared cross-kernel
    /// row source ([`ocsvm::CrossGram`] or [`ocsvm::ArenaCrossGram`]; see
    /// [`OcSvmModel::cross_decision_values`]).
    pub(crate) fn cross_decision_values<C: ocsvm::CrossRows>(&self, cross: &C) -> Option<Vec<f64>> {
        match &self.model {
            ProfileModel::OcSvm(m) => m.cross_decision_values(cross),
            ProfileModel::Svdd(m) => m.cross_decision_values(cross),
        }
    }

    /// Like [`batch_decision_values`](Self::batch_decision_values), but
    /// charges the kernel rows of non-linear models to a shared
    /// [`ocsvm::KernelRowArena`] under `owner`, so repeated scoring of the
    /// same probes (e.g. the streaming engine's per-batch loop) reuses rows
    /// across calls instead of recomputing them. Bit-identical to the plain
    /// batch path.
    pub fn batch_decision_values_in(
        &self,
        features: &[&SparseVector],
        arena: &std::sync::Arc<ocsvm::KernelRowArena>,
        owner: u64,
    ) -> Vec<f64> {
        match &self.model {
            ProfileModel::OcSvm(m) => m.batch_decision_values_in(features, arena, owner),
            ProfileModel::Svdd(m) => m.batch_decision_values_in(features, arena, owner),
        }
    }
}

impl UserProfile {
    /// Serializes the profile (metadata + underlying model) in a
    /// self-contained binary format, so profiles can be trained offline
    /// and loaded by a monitoring deployment.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: std::io::Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(b"WPRF\x01")?;
        let kind_tag: u8 = match self.params.kind {
            ModelKind::OcSvm => 0,
            ModelKind::Svdd => 1,
        };
        writer.write_all(&[kind_tag])?;
        write_varint(writer, u64::from(self.user.0))?;
        write_varint(writer, u64::from(self.window.duration_secs()))?;
        write_varint(writer, u64::from(self.window.shift_secs()))?;
        write_varint(writer, self.training_windows as u64)?;
        writer.write_all(&self.params.regularization.to_le_bytes())?;
        match &self.model {
            ProfileModel::OcSvm(m) => m.write_to(writer),
            ProfileModel::Svdd(m) => m.write_to(writer),
        }
    }

    /// Deserializes a profile written by [`UserProfile::write_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` for a bad header or corrupt stream; other I/O errors
    /// from the reader.
    pub fn read_from<R: std::io::Read>(reader: &mut R) -> std::io::Result<UserProfile> {
        use std::io::{Error, ErrorKind};
        let mut header = [0u8; 6];
        reader.read_exact(&mut header)?;
        if &header[0..4] != b"WPRF" {
            return Err(Error::new(ErrorKind::InvalidData, "bad magic, not a WPRF profile"));
        }
        if header[4] != 1 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("unsupported profile version {}", header[4]),
            ));
        }
        let kind = match header[5] {
            0 => ModelKind::OcSvm,
            1 => ModelKind::Svdd,
            other => {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("unknown model kind {other}"),
                ))
            }
        };
        let user = UserId(read_varint(reader)? as u32);
        let duration = read_varint(reader)? as u32;
        let shift = read_varint(reader)? as u32;
        let training_windows = read_varint(reader)? as usize;
        let mut reg = [0u8; 8];
        reader.read_exact(&mut reg)?;
        let regularization = f64::from_le_bytes(reg);
        let window = WindowConfig::new(duration, shift)
            .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?;
        let model = match kind {
            ModelKind::OcSvm => ProfileModel::OcSvm(OcSvmModel::read_from(reader)?),
            ModelKind::Svdd => ProfileModel::Svdd(SvddModel::read_from(reader)?),
        };
        let kernel = match &model {
            ProfileModel::OcSvm(m) => m.kernel(),
            ProfileModel::Svdd(m) => m.kernel(),
        };
        Ok(UserProfile {
            user,
            params: ProfileParams { kind, kernel, regularization },
            window,
            model,
            training_windows,
        })
    }
}

fn write_varint<W: std::io::Write>(writer: &mut W, mut value: u64) -> std::io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return writer.write_all(&[byte]);
        }
        writer.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: std::io::Read>(reader: &mut R) -> std::io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "varint overflow"));
        }
        value |= u64::from(byte[0] & 0x7f) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

impl fmt::Display for UserProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile({}, {}, {}, {} windows, {} SVs)",
            self.user,
            self.params,
            self.window,
            self.training_windows,
            self.support_vector_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::ProfileTrainer;
    use crate::vocab::Vocabulary;
    use proxylog::Taxonomy;

    fn trained(kind: ModelKind) -> (UserProfile, Vec<SparseVector>) {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let windows: Vec<SparseVector> = (0..30)
            .map(|i| {
                SparseVector::from_pairs(vec![
                    (0, 1.0),
                    (7, 0.2 + 0.05 * (i % 4) as f64),
                    (20 + (i % 3), 1.0),
                ])
                .unwrap()
            })
            .collect();
        let profile = ProfileTrainer::new(&vocab)
            .kind(kind)
            .regularization(0.3)
            .train_from_vectors(UserId(9), &windows)
            .unwrap();
        (profile, windows)
    }

    #[test]
    fn profile_round_trips_through_binary_format() {
        for kind in ModelKind::ALL {
            let (profile, windows) = trained(kind);
            let mut bytes = Vec::new();
            profile.write_to(&mut bytes).unwrap();
            let loaded = UserProfile::read_from(&mut bytes.as_slice()).unwrap();
            assert_eq!(loaded.user(), profile.user());
            assert_eq!(loaded.params(), profile.params());
            assert_eq!(loaded.window_config(), profile.window_config());
            assert_eq!(loaded.training_windows(), profile.training_windows());
            for w in &windows {
                assert_eq!(loaded.decision_value(w), profile.decision_value(w), "{kind}");
            }
        }
    }

    #[test]
    fn profile_rejects_garbage() {
        assert!(UserProfile::read_from(&mut &b"NOPE\x01\x00rest"[..]).is_err());
        let (profile, _) = trained(ModelKind::Svdd);
        let mut bytes = Vec::new();
        profile.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(UserProfile::read_from(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn model_kind_displays() {
        assert_eq!(ModelKind::OcSvm.to_string(), "OC-SVM");
        assert_eq!(ModelKind::Svdd.to_string(), "SVDD");
    }

    #[test]
    fn params_display_names_parameter() {
        let p =
            ProfileParams { kind: ModelKind::Svdd, kernel: Kernel::Linear, regularization: 0.4 };
        assert!(p.to_string().contains("C=0.4"));
        let p = ProfileParams { kind: ModelKind::OcSvm, ..p };
        assert!(p.to_string().contains("nu=0.4"));
    }
}
