//! Online user identification on a monitored device (Sect. V-B, Fig. 3).
//!
//! For real applications the windowing is *host-specific*: every
//! transaction seen on a device — whoever performed it — is aggregated
//! into sliding windows, and each window is subjected to every user model.
//! The models that accept a window are that window's candidate users; the
//! paper's Fig. 3 plots those acceptances against the actual usage of a
//! shared device over 100 minutes, and suggests voting over consecutive
//! windows to disambiguate multi-accepted windows.

use crate::metrics::AcceptanceSummary;
use crate::prefilter::{CandidateIndex, ShortlistScratch};
use crate::profile::UserProfile;
use crate::trainer::parallel_map;
use crate::vocab::Vocabulary;
use crate::window::{WindowAggregator, WindowConfig};
use proxylog::{Dataset, DeviceId, Timestamp, UserId};
use std::collections::BTreeMap;

/// One host-specific window with the models that accepted it and the
/// ground-truth users actually active in it.
#[derive(Debug, Clone)]
pub struct IdentifiedWindow {
    /// Window start.
    pub start: Timestamp,
    /// Transactions aggregated into the window.
    pub transaction_count: usize,
    /// User models that accepted the window, ascending.
    pub accepted_by: Vec<UserId>,
    /// Users whose transactions are actually in the window, ascending
    /// (ground truth; normally a single user, since a device is used by
    /// one person at a time).
    pub actual_users: Vec<UserId>,
}

impl IdentifiedWindow {
    /// Whether exactly the actual users (and nobody else) accepted.
    pub fn is_exact(&self) -> bool {
        self.accepted_by == self.actual_users
    }

    /// Whether every actual user's model accepted the window.
    pub fn covers_actual(&self) -> bool {
        self.actual_users.iter().all(|u| self.accepted_by.contains(u))
    }
}

/// Identifies users on a device by applying every profile to every
/// host-specific window.
pub fn identify_on_device(
    profiles: &BTreeMap<UserId, UserProfile>,
    vocab: &Vocabulary,
    dataset: &Dataset,
    device: DeviceId,
    config: WindowConfig,
) -> Vec<IdentifiedWindow> {
    let aggregator = WindowAggregator::new(vocab, config);
    let windows = aggregator.device_windows(dataset, device);
    let results = parallel_map(&windows, |window| {
        let accepted_by: Vec<UserId> = profiles
            .iter()
            .filter(|(_, profile)| profile.accepts(&window.features))
            .map(|(&user, _)| user)
            .collect();
        IdentifiedWindow {
            start: window.start,
            transaction_count: window.transaction_count,
            accepted_by,
            actual_users: window.users.clone(),
        }
    });
    results
}

/// Two-stage variant of [`identify_on_device`]: a [`CandidateIndex`]
/// shortlist of `top_k` candidate users per window, then exact scoring on
/// the shortlist only — every user outside it is treated as rejecting.
///
/// With all-linear profiles this reproduces [`identify_on_device`]
/// bit-identically at any `top_k` — the shortlist's margin guard keeps
/// every potentially-accepting linear user (see the [`CandidateIndex`]
/// docs for why). Non-linear profiles trade recall for an
/// O(users)-to-O(top_k) cut in exact decisions per window.
pub fn identify_on_device_prefiltered(
    profiles: &BTreeMap<UserId, UserProfile>,
    vocab: &Vocabulary,
    dataset: &Dataset,
    device: DeviceId,
    config: WindowConfig,
    index: &CandidateIndex,
    top_k: usize,
) -> Vec<IdentifiedWindow> {
    let aggregator = WindowAggregator::new(vocab, config);
    let windows = aggregator.device_windows(dataset, device);
    let mut scores = ShortlistScratch::default();
    windows
        .into_iter()
        .map(|window| {
            let shortlist = index.shortlist(&window.features, top_k, &mut scores);
            // Slots ascend, so the accepted set stays user-ascending.
            let accepted_by: Vec<UserId> = shortlist
                .into_iter()
                .map(|slot| index.user_at(slot))
                .filter(|user| {
                    profiles.get(user).is_some_and(|profile| profile.accepts(&window.features))
                })
                .collect();
            IdentifiedWindow {
                start: window.start,
                transaction_count: window.transaction_count,
                accepted_by,
                actual_users: window.users.clone(),
            }
        })
        .collect()
}

/// Summary quality of an identification run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentificationQuality {
    /// Fraction of windows where the actual user's model accepted.
    pub recall: f64,
    /// Fraction of (window, accepting model) pairs that were correct.
    pub precision: f64,
    /// Fraction of windows accepted by exactly the right model set.
    pub exact: f64,
    /// Windows evaluated.
    pub windows: usize,
}

impl IdentificationQuality {
    /// Measures an identification run (zeroes for an empty run).
    pub fn measure(windows: &[IdentifiedWindow]) -> Self {
        if windows.is_empty() {
            return Self { recall: 0.0, precision: 0.0, exact: 0.0, windows: 0 };
        }
        let n = windows.len() as f64;
        let recall = windows.iter().filter(|w| w.covers_actual()).count() as f64 / n;
        let exact = windows.iter().filter(|w| w.is_exact()).count() as f64 / n;
        let mut accepted_pairs = 0usize;
        let mut correct_pairs = 0usize;
        for w in windows {
            accepted_pairs += w.accepted_by.len();
            correct_pairs += w.accepted_by.iter().filter(|u| w.actual_users.contains(u)).count();
        }
        let precision =
            if accepted_pairs == 0 { 0.0 } else { correct_pairs as f64 / accepted_pairs as f64 };
        Self { recall, precision, exact, windows: windows.len() }
    }

    /// Collapses to the acceptance-style summary used elsewhere.
    pub fn as_summary(&self) -> AcceptanceSummary {
        AcceptanceSummary { acc_self: self.recall, acc_other: 1.0 - self.precision }
    }
}

/// Votes over the trailing `k` windows: a user is the identification of a
/// window if their model accepted strictly more than half of the last `k`
/// windows (including the current one) — the paper's suggested mitigation
/// for windows accepted by several models, at the cost of multiplying the
/// identification delay by `k`.
///
/// Returns one `(window_start, identified_user)` per input window; `None`
/// before a majority emerges or on ties.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn consecutive_window_vote(
    windows: &[IdentifiedWindow],
    k: usize,
) -> Vec<(Timestamp, Option<UserId>)> {
    assert!(k > 0, "vote length must be positive");
    let mut result = Vec::with_capacity(windows.len());
    for (i, window) in windows.iter().enumerate() {
        let lo = (i + 1).saturating_sub(k);
        let vote = majority_vote(windows[lo..=i].iter().map(|w| w.accepted_by.as_slice()));
        result.push((window.start, vote));
    }
    result
}

/// Strict-majority vote over a group of windows' acceptance sets: the
/// winner's model must have accepted strictly more than half of the
/// windows; ties and the absence of a majority yield `None`.
///
/// This is the single vote rule behind [`consecutive_window_vote`] and the
/// streaming engine's per-device decisions, so batch and online runs can
/// never disagree on it.
pub fn majority_vote<'a, I>(accept_sets: I) -> Option<UserId>
where
    I: IntoIterator<Item = &'a [UserId]>,
{
    let mut counts: BTreeMap<UserId, usize> = BTreeMap::new();
    let mut total = 0usize;
    for set in accept_sets {
        total += 1;
        for &user in set {
            *counts.entry(user).or_insert(0) += 1;
        }
    }
    let need = total / 2; // strictly more than half
    let mut winner: Option<UserId> = None;
    let mut best = need;
    let mut tie = false;
    for (&user, &count) in &counts {
        if count > best {
            winner = Some(user);
            best = count;
            tie = false;
        } else if count == best && winner.is_some() {
            tie = true;
        }
    }
    if tie {
        None
    } else {
        winner
    }
}

/// Streaming identifier: feed raw device transactions as they arrive and
/// get per-window identifications plus a running consecutive-window vote —
/// the online counterpart of [`identify_on_device`].
///
/// # Examples
///
/// ```no_run
/// use webprofiler::OnlineIdentifier;
/// # fn parts() -> (std::collections::BTreeMap<proxylog::UserId, webprofiler::UserProfile>,
/// #     webprofiler::Vocabulary, proxylog::Transaction) { unimplemented!() }
/// let (profiles, vocab, tx) = parts();
/// let mut identifier = OnlineIdentifier::new(
///     &profiles,
///     &vocab,
///     webprofiler::WindowConfig::PAPER_DEFAULT,
///     proxylog::DeviceId(3),
///     5, // vote over 5 consecutive windows
/// );
/// for window in identifier.observe(tx) {
///     println!("{:?} voted {:?}", window.start, identifier.current_user());
/// }
/// ```
#[derive(Debug)]
pub struct OnlineIdentifier<'a> {
    profiles: &'a BTreeMap<UserId, UserProfile>,
    stream: crate::window::WindowStream<'a>,
    vote_k: usize,
    history: Vec<IdentifiedWindow>,
    current: Option<UserId>,
}

impl<'a> OnlineIdentifier<'a> {
    /// Creates a streaming identifier for one monitored device.
    ///
    /// # Panics
    ///
    /// Panics if `vote_k` is zero.
    pub fn new(
        profiles: &'a BTreeMap<UserId, UserProfile>,
        vocab: &'a Vocabulary,
        config: WindowConfig,
        device: DeviceId,
        vote_k: usize,
    ) -> Self {
        assert!(vote_k > 0, "vote length must be positive");
        Self {
            profiles,
            stream: crate::window::WindowStream::new(
                vocab,
                config,
                crate::window::WindowKey::Device(device),
            ),
            vote_k,
            history: Vec::new(),
            current: None,
        }
    }

    /// Feeds one transaction; returns the windows completed by it (already
    /// folded into the running vote).
    ///
    /// # Panics
    ///
    /// Panics on out-of-order transactions (see
    /// [`WindowStream::push`](crate::WindowStream::push)).
    pub fn observe(&mut self, tx: proxylog::Transaction) -> Vec<IdentifiedWindow> {
        let windows = self.stream.push(tx);
        self.fold(windows)
    }

    /// Flushes the remaining open windows at the end of monitoring.
    pub fn finish(&mut self) -> Vec<IdentifiedWindow> {
        let windows = self.stream.flush();
        self.fold(windows)
    }

    /// The currently identified user according to the trailing vote, if a
    /// strict majority exists.
    pub fn current_user(&self) -> Option<UserId> {
        self.current
    }

    /// Every identified window so far, in order.
    pub fn history(&self) -> &[IdentifiedWindow] {
        &self.history
    }

    fn fold(&mut self, windows: Vec<crate::window::TransactionWindow>) -> Vec<IdentifiedWindow> {
        let mut out = Vec::with_capacity(windows.len());
        for window in windows {
            let accepted_by: Vec<UserId> = self
                .profiles
                .iter()
                .filter(|(_, profile)| profile.accepts(&window.features))
                .map(|(&user, _)| user)
                .collect();
            let identified = IdentifiedWindow {
                start: window.start,
                transaction_count: window.transaction_count,
                accepted_by,
                actual_users: window.users.clone(),
            };
            self.history.push(identified.clone());
            out.push(identified);
        }
        if !out.is_empty() {
            let votes = consecutive_window_vote(&self.history, self.vote_k);
            self.current = votes.last().and_then(|&(_, user)| user);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(start: i64, accepted: &[u32], actual: &[u32]) -> IdentifiedWindow {
        IdentifiedWindow {
            start: Timestamp(start),
            transaction_count: 1,
            accepted_by: accepted.iter().map(|&u| UserId(u)).collect(),
            actual_users: actual.iter().map(|&u| UserId(u)).collect(),
        }
    }

    #[test]
    fn exactness_and_coverage() {
        let w = window(0, &[1], &[1]);
        assert!(w.is_exact());
        assert!(w.covers_actual());
        let w = window(0, &[1, 2], &[1]);
        assert!(!w.is_exact());
        assert!(w.covers_actual());
        let w = window(0, &[2], &[1]);
        assert!(!w.covers_actual());
    }

    #[test]
    fn quality_measures() {
        let windows = vec![
            window(0, &[1], &[1]),     // exact
            window(30, &[1, 2], &[1]), // covered, one spurious
            window(60, &[], &[1]),     // missed
        ];
        let q = IdentificationQuality::measure(&windows);
        assert_eq!(q.windows, 3);
        assert!((q.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.exact - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.precision - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quality_of_empty_run() {
        let q = IdentificationQuality::measure(&[]);
        assert_eq!(q.windows, 0);
        assert_eq!(q.recall, 0.0);
    }

    #[test]
    fn vote_identifies_majority_user() {
        let windows =
            vec![window(0, &[1], &[1]), window(30, &[1, 2], &[1]), window(60, &[1], &[1])];
        let votes = consecutive_window_vote(&windows, 3);
        assert_eq!(votes[2].1, Some(UserId(1)));
    }

    #[test]
    fn vote_none_on_tie() {
        let windows = vec![window(0, &[1, 2], &[1]), window(30, &[1, 2], &[1])];
        let votes = consecutive_window_vote(&windows, 2);
        assert_eq!(votes[1].1, None);
    }

    #[test]
    fn vote_with_k_one_follows_single_acceptance() {
        let windows = vec![window(0, &[3], &[3]), window(30, &[], &[3])];
        let votes = consecutive_window_vote(&windows, 1);
        assert_eq!(votes[0].1, Some(UserId(3)));
        assert_eq!(votes[1].1, None);
    }

    #[test]
    fn vote_switches_user_after_handover() {
        // User 1 active for 4 windows, then user 2.
        let mut windows = Vec::new();
        for i in 0..4 {
            windows.push(window(i * 30, &[1], &[1]));
        }
        for i in 4..8 {
            windows.push(window(i * 30, &[2], &[2]));
        }
        let votes = consecutive_window_vote(&windows, 3);
        assert_eq!(votes[3].1, Some(UserId(1)));
        assert_eq!(votes[7].1, Some(UserId(2)));
    }

    #[test]
    #[should_panic(expected = "vote length")]
    fn vote_rejects_zero_k() {
        let _ = consecutive_window_vote(&[], 0);
    }

    #[test]
    fn majority_vote_requires_strict_majority() {
        let one = vec![UserId(1)];
        let two = vec![UserId(2)];
        let both = vec![UserId(1), UserId(2)];
        // 2 of 4 windows is not strictly more than half.
        assert_eq!(
            majority_vote([one.as_slice(), one.as_slice(), two.as_slice(), two.as_slice()]),
            None
        );
        // 3 of 4 is.
        assert_eq!(
            majority_vote([one.as_slice(), one.as_slice(), one.as_slice(), two.as_slice()]),
            Some(UserId(1))
        );
        // Ties at the top yield None.
        assert_eq!(majority_vote([both.as_slice(), both.as_slice(), both.as_slice()]), None);
        // No acceptances at all: no winner.
        assert_eq!(majority_vote([[].as_slice()]), None);
    }

    #[test]
    fn vote_exact_half_ties_at_even_window_counts_yield_none() {
        // 2 of 4 acceptances is exactly half — not a strict majority —
        // at every even trailing-window count.
        for k in [2usize, 4, 6] {
            let mut windows = Vec::new();
            for i in 0..k as i64 {
                // User 1 accepts the first half, user 2 the second half.
                let user = if i < k as i64 / 2 { 1 } else { 2 };
                windows.push(window(i * 30, &[user], &[user]));
            }
            let votes = consecutive_window_vote(&windows, k);
            assert_eq!(votes[k - 1].1, None, "k = {k}: exact half must not elect");
        }
        // One extra acceptance breaks the tie.
        let windows = vec![
            window(0, &[1], &[1]),
            window(30, &[1], &[1]),
            window(60, &[1, 2], &[2]),
            window(90, &[2], &[2]),
        ];
        assert_eq!(consecutive_window_vote(&windows, 4)[3].1, Some(UserId(1)));
    }

    #[test]
    fn vote_single_window_k_one_boundaries() {
        // k = 1 over one window: sole acceptor wins, multi-acceptance
        // ties, and an empty set abstains.
        assert_eq!(consecutive_window_vote(&[window(0, &[7], &[7])], 1)[0].1, Some(UserId(7)));
        assert_eq!(consecutive_window_vote(&[window(0, &[1, 2], &[1])], 1)[0].1, None);
        assert_eq!(consecutive_window_vote(&[window(0, &[], &[1])], 1)[0].1, None);
    }

    #[test]
    fn vote_empty_acceptance_sets_never_elect() {
        let windows: Vec<IdentifiedWindow> = (0..5).map(|i| window(i * 30, &[], &[1])).collect();
        for k in 1..=5 {
            for (start, vote) in consecutive_window_vote(&windows, k) {
                assert_eq!(vote, None, "empty sets elected someone at {start:?} with k = {k}");
            }
        }
        // Empty windows interleaved with acceptances still count towards
        // the total the majority is measured against.
        let windows = vec![window(0, &[1], &[1]), window(30, &[], &[1]), window(60, &[], &[1])];
        assert_eq!(consecutive_window_vote(&windows, 3)[2].1, None, "1 of 3 is no majority");
    }

    #[test]
    fn batch_and_streaming_vote_folds_are_pinned_identical() {
        // The engine folds acceptance sets through a bounded deque and
        // calls majority_vote per window; the batch path slices. Both
        // must agree on every prefix, including ties, empties and
        // handovers.
        use std::collections::VecDeque;
        let acceptance_sets: Vec<Vec<u32>> = vec![
            vec![1],
            vec![1, 2],
            vec![],
            vec![2],
            vec![2],
            vec![1, 2],
            vec![],
            vec![3],
            vec![3],
            vec![3, 1],
        ];
        let windows: Vec<IdentifiedWindow> = acceptance_sets
            .iter()
            .enumerate()
            .map(|(i, set)| window(i as i64 * 30, set, &[1]))
            .collect();
        for k in 1..=4 {
            let batch = consecutive_window_vote(&windows, k);
            let mut history: VecDeque<Vec<UserId>> = VecDeque::with_capacity(k);
            for (i, w) in windows.iter().enumerate() {
                history.push_back(w.accepted_by.clone());
                if history.len() > k {
                    history.pop_front();
                }
                let streamed = majority_vote(history.iter().map(|set| set.as_slice()));
                assert_eq!(streamed, batch[i].1, "window {i}, k = {k}");
            }
        }
    }

    #[test]
    fn prefiltered_identification_matches_exhaustive_at_any_k() {
        use crate::prefilter::CandidateIndex;
        use crate::trainer::ProfileTrainer;
        use tracegen::{Scenario, TraceGenerator};

        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let index = CandidateIndex::build(&profiles, &vocab);
        for device in dataset.devices() {
            let exhaustive = identify_on_device(
                &profiles,
                &vocab,
                &dataset,
                device,
                WindowConfig::PAPER_DEFAULT,
            );
            // All default profiles are linear SVDD, so the margin guard
            // pins bit-identity at every shortlist budget — including
            // k = 1, well below the widest acceptance set.
            for k in [1, 3, profiles.len()] {
                let prefiltered = identify_on_device_prefiltered(
                    &profiles,
                    &vocab,
                    &dataset,
                    device,
                    WindowConfig::PAPER_DEFAULT,
                    &index,
                    k,
                );
                assert_eq!(prefiltered.len(), exhaustive.len());
                for (a, b) in prefiltered.iter().zip(&exhaustive) {
                    assert_eq!(a.start, b.start);
                    assert_eq!(a.accepted_by, b.accepted_by, "top-{k} shortlist on {device:?}");
                    assert_eq!(a.actual_users, b.actual_users);
                }
            }
        }
    }

    #[test]
    fn online_identifier_matches_batch_identification() {
        use crate::trainer::ProfileTrainer;
        use tracegen::{Scenario, TraceGenerator};

        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        let device = dataset.devices()[0];
        let batch =
            identify_on_device(&profiles, &vocab, &dataset, device, WindowConfig::PAPER_DEFAULT);
        let mut online =
            OnlineIdentifier::new(&profiles, &vocab, WindowConfig::PAPER_DEFAULT, device, 3);
        let mut streamed = Vec::new();
        for tx in dataset.for_device(device) {
            streamed.extend(online.observe(*tx));
        }
        streamed.extend(online.finish());
        assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(&batch) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.accepted_by, b.accepted_by);
            assert_eq!(a.actual_users, b.actual_users);
        }
        assert_eq!(online.history().len(), batch.len());
    }

    #[test]
    fn online_identifier_votes_for_dominant_user() {
        use crate::trainer::ProfileTrainer;
        use tracegen::{Scenario, TraceGenerator};

        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let (profiles, _) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        // Monitor the busiest device.
        let device =
            dataset.devices().into_iter().max_by_key(|&d| dataset.for_device(d).count()).unwrap();
        let mut online =
            OnlineIdentifier::new(&profiles, &vocab, WindowConfig::PAPER_DEFAULT, device, 3);
        let mut correct = 0usize;
        let mut decided = 0usize;
        for tx in dataset.for_device(device) {
            for window in online.observe(*tx) {
                if let Some(user) = online.current_user() {
                    decided += 1;
                    if window.actual_users.contains(&user) {
                        correct += 1;
                    }
                }
            }
        }
        assert!(decided > 0, "vote never decided");
        assert!(correct * 2 > decided, "votes mostly wrong: {correct}/{decided}");
    }

    #[test]
    fn identify_on_device_end_to_end() {
        use crate::profile::ModelKind;
        use crate::trainer::ProfileTrainer;
        use ocsvm::Kernel;
        use tracegen::{Scenario, TraceGenerator};

        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let trainer = ProfileTrainer::new(&vocab)
            .kind(ModelKind::OcSvm)
            .kernel(Kernel::Linear)
            .regularization(0.1)
            .max_training_windows(200);
        let (profiles, _) = trainer.train_all(&dataset);
        let device = dataset.devices()[0];
        let identified =
            identify_on_device(&profiles, &vocab, &dataset, device, WindowConfig::PAPER_DEFAULT);
        assert!(!identified.is_empty());
        let quality = IdentificationQuality::measure(&identified);
        // Models were trained on this same data; their own windows should
        // be mostly recognized.
        assert!(quality.recall > 0.5, "recall = {}", quality.recall);
    }
}
