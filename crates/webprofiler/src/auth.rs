//! Continuous authentication (the application motivating the paper,
//! Sect. I): keep a session alive only while the device's web behavior
//! matches the authenticated user's profile.
//!
//! The paper's suggested operating point: with 60 s / 30 s windows a
//! decision is available every 30 seconds; requiring `k` consecutive
//! rejections before logging out trades detection delay (`k·S` seconds)
//! against false alarms (Sect. V-B).

use crate::profile::UserProfile;
use ocsvm::SparseVector;
use proxylog::UserId;
use std::fmt;

/// Outcome of observing one transaction window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthDecision {
    /// The window matches the authenticated user's profile.
    Accepted,
    /// The window was rejected, but the streak is below the logout
    /// threshold.
    Suspicious {
        /// Consecutive rejected windows so far.
        consecutive: usize,
    },
    /// The rejection streak reached the threshold: terminate the session.
    LoggedOut,
}

impl fmt::Display for AuthDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthDecision::Accepted => write!(f, "accepted"),
            AuthDecision::Suspicious { consecutive } => {
                write!(f, "suspicious ({consecutive} consecutive rejects)")
            }
            AuthDecision::LoggedOut => write!(f, "logged out"),
        }
    }
}

/// Stateful session monitor for one authenticated user.
///
/// Feed every host-specific transaction window of the monitored device to
/// [`AuthenticationMonitor::observe`]; the monitor logs the session out
/// after `logout_after` consecutive rejections and stays logged out until
/// [`AuthenticationMonitor::reauthenticate`].
///
/// # Examples
///
/// ```no_run
/// use webprofiler::{AuthDecision, AuthenticationMonitor};
/// # fn profile() -> webprofiler::UserProfile { unimplemented!() }
/// # fn next_window() -> ocsvm::SparseVector { unimplemented!() }
///
/// let profile = profile();
/// let mut monitor = AuthenticationMonitor::new(&profile, 3);
/// loop {
///     match monitor.observe(&next_window()) {
///         AuthDecision::LoggedOut => break, // force re-login
///         _ => continue,
///     }
/// }
/// ```
#[derive(Debug)]
pub struct AuthenticationMonitor<'a> {
    profile: &'a UserProfile,
    logout_after: usize,
    consecutive_rejects: usize,
    logged_out: bool,
    windows_observed: usize,
    logouts: usize,
}

impl<'a> AuthenticationMonitor<'a> {
    /// Creates a monitor that logs out after `logout_after` consecutive
    /// rejected windows.
    ///
    /// # Panics
    ///
    /// Panics if `logout_after` is zero.
    pub fn new(profile: &'a UserProfile, logout_after: usize) -> Self {
        assert!(logout_after > 0, "logout threshold must be positive");
        Self {
            profile,
            logout_after,
            consecutive_rejects: 0,
            logged_out: false,
            windows_observed: 0,
            logouts: 0,
        }
    }

    /// The user whose session is being protected.
    pub fn user(&self) -> UserId {
        self.profile.user()
    }

    /// Whether the session is currently logged out.
    pub fn is_logged_out(&self) -> bool {
        self.logged_out
    }

    /// Windows observed since construction.
    pub fn windows_observed(&self) -> usize {
        self.windows_observed
    }

    /// Logout events since construction.
    pub fn logouts(&self) -> usize {
        self.logouts
    }

    /// Observes one window and updates the session state.
    ///
    /// Windows observed while logged out keep returning
    /// [`AuthDecision::LoggedOut`] without changing state.
    pub fn observe(&mut self, features: &SparseVector) -> AuthDecision {
        self.windows_observed += 1;
        if self.logged_out {
            return AuthDecision::LoggedOut;
        }
        if self.profile.accepts(features) {
            self.consecutive_rejects = 0;
            return AuthDecision::Accepted;
        }
        self.consecutive_rejects += 1;
        if self.consecutive_rejects >= self.logout_after {
            self.logged_out = true;
            self.logouts += 1;
            AuthDecision::LoggedOut
        } else {
            AuthDecision::Suspicious { consecutive: self.consecutive_rejects }
        }
    }

    /// Restores the session after an out-of-band re-authentication.
    pub fn reauthenticate(&mut self) {
        self.logged_out = false;
        self.consecutive_rejects = 0;
    }
}

/// Offline evaluation of a takeover scenario: the owner's windows followed
/// by an intruder's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TakeoverEvaluation {
    /// Spurious logouts raised during the owner's own phase.
    pub false_alarms: usize,
    /// Windows of intruder traffic observed before logout, or `None` if
    /// the intruder was never caught.
    pub windows_to_detection: Option<usize>,
}

impl TakeoverEvaluation {
    /// Replays `owner_windows` then `intruder_windows` against the owner's
    /// profile with the given logout threshold, re-authenticating after
    /// every owner-phase logout (each counts as a false alarm).
    pub fn replay(
        profile: &UserProfile,
        owner_windows: &[SparseVector],
        intruder_windows: &[SparseVector],
        logout_after: usize,
    ) -> Self {
        let mut monitor = AuthenticationMonitor::new(profile, logout_after);
        let mut false_alarms = 0;
        for window in owner_windows {
            if monitor.observe(window) == AuthDecision::LoggedOut {
                false_alarms += 1;
                monitor.reauthenticate();
            }
        }
        let mut windows_to_detection = None;
        for (i, window) in intruder_windows.iter().enumerate() {
            if monitor.observe(window) == AuthDecision::LoggedOut {
                windows_to_detection = Some(i + 1);
                break;
            }
        }
        Self { false_alarms, windows_to_detection }
    }

    /// Detection delay in seconds given the window shift used.
    pub fn detection_delay_secs(&self, shift_secs: u32) -> Option<u64> {
        self.windows_to_detection.map(|w| w as u64 * u64::from(shift_secs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelKind;
    use crate::trainer::ProfileTrainer;
    use crate::vocab::Vocabulary;
    use ocsvm::Kernel;
    use proxylog::Taxonomy;

    fn fixture() -> (UserProfile, Vec<SparseVector>, Vec<SparseVector>) {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let make = |base: u32, n: usize| -> Vec<SparseVector> {
            (0..n)
                .map(|i| {
                    SparseVector::from_pairs(vec![
                        (0, 1.0),
                        (7, 0.2 + 0.05 * (i % 5) as f64),
                        (base + (i % 3) as u32, 1.0),
                    ])
                    .unwrap()
                })
                .collect()
        };
        let owner = make(30, 40);
        let intruder = make(500, 40);
        let profile = ProfileTrainer::new(&vocab)
            .kind(ModelKind::Svdd)
            .kernel(Kernel::Rbf { gamma: 1.0 })
            .regularization(0.3)
            .train_from_vectors(UserId(1), &owner)
            .unwrap();
        (profile, owner, intruder)
    }

    #[test]
    fn owner_windows_keep_session_alive() {
        let (profile, owner, _) = fixture();
        let mut monitor = AuthenticationMonitor::new(&profile, 3);
        let mut logged_out = false;
        for w in &owner {
            logged_out |= monitor.observe(w) == AuthDecision::LoggedOut;
        }
        assert!(!logged_out, "owner should not be logged out");
        assert_eq!(monitor.windows_observed(), owner.len());
    }

    #[test]
    fn intruder_triggers_logout_quickly() {
        let (profile, _, intruder) = fixture();
        let mut monitor = AuthenticationMonitor::new(&profile, 3);
        let mut decisions = Vec::new();
        for w in intruder.iter().take(5) {
            decisions.push(monitor.observe(w));
        }
        assert_eq!(decisions[0], AuthDecision::Suspicious { consecutive: 1 });
        assert_eq!(decisions[2], AuthDecision::LoggedOut);
        assert!(monitor.is_logged_out());
        // Stays logged out.
        assert_eq!(decisions[3], AuthDecision::LoggedOut);
        assert_eq!(monitor.logouts(), 1);
    }

    #[test]
    fn reauthentication_restores_session() {
        let (profile, owner, intruder) = fixture();
        let mut monitor = AuthenticationMonitor::new(&profile, 1);
        assert_eq!(monitor.observe(&intruder[0]), AuthDecision::LoggedOut);
        monitor.reauthenticate();
        assert!(!monitor.is_logged_out());
        assert_eq!(monitor.observe(&owner[0]), AuthDecision::Accepted);
    }

    #[test]
    fn replay_measures_detection_latency() {
        let (profile, owner, intruder) = fixture();
        let result = TakeoverEvaluation::replay(&profile, &owner, &intruder, 3);
        assert_eq!(result.false_alarms, 0);
        assert_eq!(result.windows_to_detection, Some(3));
        assert_eq!(result.detection_delay_secs(30), Some(90));
    }

    #[test]
    fn replay_reports_missed_intruder() {
        let (profile, owner, _) = fixture();
        // "Intruder" replays the owner's own windows: never caught.
        let result = TakeoverEvaluation::replay(&profile, &owner, &owner, 3);
        assert_eq!(result.windows_to_detection, None);
        assert_eq!(result.detection_delay_secs(30), None);
    }

    #[test]
    #[should_panic(expected = "logout threshold")]
    fn zero_threshold_rejected() {
        let (profile, _, _) = fixture();
        let _ = AuthenticationMonitor::new(&profile, 0);
    }
}
