//! Feature-vector vocabulary: the bag-of-words column layout of Tab. I.
//!
//! Every value a log field can take becomes one column of the feature
//! vector. At paper scale the layout is:
//!
//! | feature category      | count | columns   |
//! |-----------------------|-------|-----------|
//! | http action           | 4     | 0–3       |
//! | uri scheme             | 2     | 4–5       |
//! | public address flag   | 1     | 6         |
//! | reputation (risk)     | 1     | 7         |
//! | reputation verified   | 1     | 8         |
//! | category              | 105   | 9–113     |
//! | supertype             | 8     | 114–121   |
//! | subtype               | 257   | 122–378   |
//! | application type      | 464   | 379–842   |
//!
//! for a total of 843 columns (Tab. I).

use proxylog::{AppTypeId, CategoryId, SubtypeId, SupertypeId, Taxonomy, Transaction};
use std::sync::Arc;

/// Index of the public/private destination column.
const FLAG_COLUMNS: usize = 3; // private flag, risk, verified

/// Which kind of value a column holds, deciding its window aggregation
/// (binary → logical OR, numeric → mean; Sect. III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Bag-of-words presence column, aggregated by logical disjunction.
    Binary,
    /// Numeric column, aggregated by averaging.
    Numeric,
}

/// Column layout for a taxonomy, plus single-transaction feature
/// extraction.
///
/// # Examples
///
/// ```
/// use proxylog::Taxonomy;
/// use webprofiler::Vocabulary;
///
/// let vocab = Vocabulary::new(Taxonomy::paper_scale());
/// assert_eq!(vocab.n_features(), 843);
/// ```
#[derive(Debug, Clone)]
pub struct Vocabulary {
    taxonomy: Arc<Taxonomy>,
    scheme_offset: u32,
    private_flag: u32,
    risk: u32,
    verified: u32,
    category_offset: u32,
    supertype_offset: u32,
    subtype_offset: u32,
    app_offset: u32,
    n_features: u32,
}

impl Vocabulary {
    /// Builds the layout for a taxonomy.
    pub fn new(taxonomy: Arc<Taxonomy>) -> Self {
        let scheme_offset = 4u32;
        let private_flag = 6u32;
        let risk = 7u32;
        let verified = 8u32;
        let category_offset = 4 + 2 + FLAG_COLUMNS as u32;
        let supertype_offset = category_offset + taxonomy.category_count() as u32;
        let subtype_offset = supertype_offset + taxonomy.supertype_count() as u32;
        let app_offset = subtype_offset + taxonomy.subtype_count() as u32;
        let n_features = app_offset + taxonomy.app_type_count() as u32;
        Self {
            taxonomy,
            scheme_offset,
            private_flag,
            risk,
            verified,
            category_offset,
            supertype_offset,
            subtype_offset,
            app_offset,
            n_features,
        }
    }

    /// Taxonomy backing this vocabulary.
    pub fn taxonomy(&self) -> &Arc<Taxonomy> {
        &self.taxonomy
    }

    /// Total number of feature columns (843 at paper scale).
    pub fn n_features(&self) -> usize {
        self.n_features as usize
    }

    /// Column of an HTTP action.
    pub fn action_column(&self, action: proxylog::HttpAction) -> u32 {
        action.index() as u32
    }

    /// Column of a URI scheme.
    pub fn scheme_column(&self, scheme: proxylog::UriScheme) -> u32 {
        self.scheme_offset + scheme.index() as u32
    }

    /// Column of the public(0)/private(1) destination feature.
    pub fn private_flag_column(&self) -> u32 {
        self.private_flag
    }

    /// Column of the numeric reputation-risk feature.
    pub fn risk_column(&self) -> u32 {
        self.risk
    }

    /// Column of the reputation-verified feature.
    pub fn verified_column(&self) -> u32 {
        self.verified
    }

    /// Column of a website category.
    pub fn category_column(&self, id: CategoryId) -> u32 {
        self.category_offset + u32::from(id.0)
    }

    /// Column of a media supertype.
    pub fn supertype_column(&self, id: SupertypeId) -> u32 {
        self.supertype_offset + u32::from(id.0)
    }

    /// Column of a media subtype.
    pub fn subtype_column(&self, id: SubtypeId) -> u32 {
        self.subtype_offset + u32::from(id.0)
    }

    /// Column of an application type.
    pub fn app_type_column(&self, id: AppTypeId) -> u32 {
        self.app_offset + u32::from(id.0)
    }

    /// Whether a column is aggregated as binary or numeric.
    ///
    /// The paper's aggregation example (Sect. III-C) averages both
    /// reputation features; the public/private flag is treated the same
    /// way (the mean is the fraction of private-destination transactions
    /// in the window), which preserves strictly more information than a
    /// disjunction. Every bag-of-words column is binary.
    pub fn column_kind(&self, column: u32) -> ColumnKind {
        if column == self.private_flag || column == self.risk || column == self.verified {
            ColumnKind::Numeric
        } else {
            ColumnKind::Binary
        }
    }

    /// Human-readable label of a column (used by the Tab. I binary and
    /// debugging output).
    ///
    /// # Panics
    ///
    /// Panics if `column >= self.n_features()`.
    pub fn column_label(&self, column: u32) -> String {
        assert!(column < self.n_features, "column {column} out of range");
        if column < self.scheme_offset {
            return format!("action:{}", proxylog::HttpAction::ALL[column as usize]);
        }
        if column < self.private_flag {
            return format!(
                "scheme:{}",
                proxylog::UriScheme::ALL[(column - self.scheme_offset) as usize]
            );
        }
        if column == self.private_flag {
            return "private_destination".to_owned();
        }
        if column == self.risk {
            return "reputation:risk".to_owned();
        }
        if column == self.verified {
            return "reputation:verified".to_owned();
        }
        if column < self.supertype_offset {
            let id = CategoryId((column - self.category_offset) as u16);
            return format!("category:{}", self.taxonomy.category_name(id));
        }
        if column < self.subtype_offset {
            let id = SupertypeId((column - self.supertype_offset) as u8);
            return format!("supertype:{}", self.taxonomy.supertype_name(id));
        }
        if column < self.app_offset {
            let id = SubtypeId((column - self.subtype_offset) as u16);
            return format!("subtype:{}", self.taxonomy.subtype_name(id));
        }
        let id = AppTypeId((column - self.app_offset) as u16);
        format!("application:{}", self.taxonomy.app_type_name(id))
    }

    /// The Tab. I breakdown: `(feature category, column count)` rows in the
    /// paper's order, plus the implied total.
    pub fn composition(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("http action", 4),
            ("uri scheme", 2),
            ("public address flag", 1),
            ("reputation", 1),
            ("reputation verified", 1),
            ("category", self.taxonomy.category_count()),
            ("supertype", self.taxonomy.supertype_count()),
            ("subtype", self.taxonomy.subtype_count()),
            ("application type", self.taxonomy.app_type_count()),
        ]
    }

    /// The columns set by a single transaction, as `(column, value)` pairs
    /// in ascending column order (the raw material of both single-vector
    /// extraction and window aggregation).
    pub fn transaction_columns(&self, tx: &Transaction) -> [(u32, f64); 9] {
        // Columns are emitted in layout order: action < scheme < flags <
        // category < supertype < subtype < app.
        [
            (self.action_column(tx.action), 1.0),
            (self.scheme_column(tx.scheme), 1.0),
            (self.private_flag, if tx.private_destination { 1.0 } else { 0.0 }),
            (self.risk, tx.reputation.risk_score()),
            (self.verified, if tx.reputation.is_verified() { 1.0 } else { 0.0 }),
            (self.category_column(tx.category), 1.0),
            (self.supertype_column(self.taxonomy.supertype_of(tx.subtype)), 1.0),
            (self.subtype_column(tx.subtype), 1.0),
            (self.app_type_column(tx.app_type), 1.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxylog::{DeviceId, HttpAction, Reputation, SiteId, Timestamp, UriScheme, UserId};

    fn vocab() -> Vocabulary {
        Vocabulary::new(Taxonomy::paper_scale())
    }

    fn tx() -> Transaction {
        Transaction {
            timestamp: Timestamp(0),
            user: UserId(0),
            device: DeviceId(0),
            site: SiteId(0),
            action: HttpAction::Connect,
            scheme: UriScheme::Http,
            category: CategoryId(3),
            subtype: SubtypeId(10),
            app_type: AppTypeId(20),
            reputation: Reputation::Medium,
            private_destination: true,
        }
    }

    #[test]
    fn total_is_843_at_paper_scale() {
        assert_eq!(vocab().n_features(), 843);
    }

    #[test]
    fn composition_matches_table_one() {
        let rows = vocab().composition();
        let total: usize = rows.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 843);
        assert_eq!(rows[0], ("http action", 4));
        assert_eq!(rows[5], ("category", 105));
        assert_eq!(rows[8], ("application type", 464));
    }

    #[test]
    fn columns_are_disjoint_and_in_range() {
        let v = vocab();
        let cols = v.transaction_columns(&tx());
        let mut indices: Vec<u32> = cols.iter().map(|&(c, _)| c).collect();
        let n = indices.len();
        indices.dedup();
        assert_eq!(indices.len(), n, "duplicate columns");
        assert!(indices.windows(2).all(|w| w[0] < w[1]), "not ascending: {indices:?}");
        assert!(indices.iter().all(|&c| c < 843));
    }

    #[test]
    fn transaction_column_values_match_fields() {
        let v = vocab();
        let t = tx();
        let cols = v.transaction_columns(&t);
        let get = |col: u32| cols.iter().find(|&&(c, _)| c == col).map(|&(_, val)| val);
        assert_eq!(get(v.action_column(HttpAction::Connect)), Some(1.0));
        assert_eq!(get(v.scheme_column(UriScheme::Http)), Some(1.0));
        assert_eq!(get(v.private_flag_column()), Some(1.0));
        assert_eq!(get(v.risk_column()), Some(0.5));
        assert_eq!(get(v.verified_column()), Some(1.0));
        assert_eq!(get(v.category_column(CategoryId(3))), Some(1.0));
        assert_eq!(get(v.subtype_column(SubtypeId(10))), Some(1.0));
        assert_eq!(get(v.app_type_column(AppTypeId(20))), Some(1.0));
    }

    #[test]
    fn unverified_minimal_risk_is_all_zero() {
        let v = vocab();
        let t =
            Transaction { reputation: Reputation::Unverified, private_destination: false, ..tx() };
        let cols = v.transaction_columns(&t);
        let get = |col: u32| cols.iter().find(|&&(c, _)| c == col).map(|&(_, val)| val);
        assert_eq!(get(v.risk_column()), Some(0.0));
        assert_eq!(get(v.verified_column()), Some(0.0));
        assert_eq!(get(v.private_flag_column()), Some(0.0));
    }

    #[test]
    fn column_kinds() {
        let v = vocab();
        assert_eq!(v.column_kind(v.private_flag_column()), ColumnKind::Numeric);
        assert_eq!(v.column_kind(v.risk_column()), ColumnKind::Numeric);
        assert_eq!(v.column_kind(v.verified_column()), ColumnKind::Numeric);
        assert_eq!(v.column_kind(0), ColumnKind::Binary);
        assert_eq!(v.column_kind(842), ColumnKind::Binary);
    }

    #[test]
    fn labels_are_informative() {
        let v = vocab();
        assert_eq!(v.column_label(0), "action:GET");
        assert_eq!(v.column_label(4), "scheme:HTTP");
        assert_eq!(v.column_label(6), "private_destination");
        assert_eq!(v.column_label(7), "reputation:risk");
        assert_eq!(v.column_label(8), "reputation:verified");
        assert!(v.column_label(9).starts_with("category:"));
        assert!(v.column_label(114).starts_with("supertype:"));
        assert!(v.column_label(122).starts_with("subtype:"));
        assert!(v.column_label(379).starts_with("application:"));
        assert!(v.column_label(842).starts_with("application:"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_out_of_range_panics() {
        let _ = vocab().column_label(843);
    }

    #[test]
    fn supertype_derived_from_subtype() {
        let v = vocab();
        let taxonomy = v.taxonomy();
        let html = taxonomy.subtype_by_media_string("text/html").unwrap();
        let t = Transaction { subtype: html, ..tx() };
        let cols = v.transaction_columns(&t);
        let text = taxonomy.supertype_of(html);
        assert!(cols.contains(&(v.supertype_column(text), 1.0)));
    }
}
