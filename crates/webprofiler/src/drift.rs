//! Behavioral-drift monitoring: when to retrain a profile.
//!
//! The pipeline rests on the consistency assumption validated in
//! Sect. IV-B: a user's windows keep repeating shapes they produced
//! before. [`DriftMonitor`] tracks that statistic *online* — the fraction
//! of recent windows that are bit-exact-new (the Fig. 2 novelty ratio over
//! a sliding horizon). A persistently high rate means the assumption is
//! failing for this user (new job, new tools — or a slow takeover) and the
//! profile should be retrained or the account reviewed.

use ocsvm::SparseVector;
use std::collections::{HashSet, VecDeque};

/// Online novelty-rate tracker over a trailing horizon of windows.
///
/// # Examples
///
/// ```
/// use ocsvm::SparseVector;
/// use webprofiler::DriftMonitor;
///
/// let mut monitor = DriftMonitor::new(4);
/// let a = SparseVector::from_dense(&[1.0, 0.0]);
/// let b = SparseVector::from_dense(&[0.0, 1.0]);
/// monitor.observe(&a); // novel
/// monitor.observe(&a); // repeat
/// monitor.observe(&b); // novel
/// monitor.observe(&b); // repeat
/// assert_eq!(monitor.novelty_rate(), 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DriftMonitor {
    seen: HashSet<Vec<(u32, u64)>>,
    recent: VecDeque<bool>,
    horizon: usize,
    observed: usize,
}

impl DriftMonitor {
    /// Creates a monitor whose novelty rate is computed over the trailing
    /// `horizon` windows.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        Self {
            seen: HashSet::new(),
            recent: VecDeque::with_capacity(horizon),
            horizon,
            observed: 0,
        }
    }

    /// Seeds the monitor with a user's historical windows (training data)
    /// without affecting the trailing rate.
    pub fn seed<'a>(&mut self, windows: impl IntoIterator<Item = &'a SparseVector>) {
        for window in windows {
            self.seen.insert(canonical(window));
        }
    }

    /// Observes one new window; returns whether it was novel (never seen
    /// bit-exactly before).
    pub fn observe(&mut self, window: &SparseVector) -> bool {
        let novel = self.seen.insert(canonical(window));
        if self.recent.len() == self.horizon {
            self.recent.pop_front();
        }
        self.recent.push_back(novel);
        self.observed += 1;
        novel
    }

    /// Fraction of the trailing horizon that was novel (0.0 before any
    /// observation).
    pub fn novelty_rate(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().filter(|&&n| n).count() as f64 / self.recent.len() as f64
    }

    /// Whether the trailing novelty rate exceeds `threshold` with a full
    /// horizon of evidence.
    pub fn is_drifting(&self, threshold: f64) -> bool {
        self.recent.len() == self.horizon && self.novelty_rate() > threshold
    }

    /// Distinct window shapes seen so far (including seeds).
    pub fn known_shapes(&self) -> usize {
        self.seen.len()
    }

    /// Total windows observed (excluding seeds).
    pub fn observed(&self) -> usize {
        self.observed
    }
}

fn canonical(window: &SparseVector) -> Vec<(u32, u64)> {
    window.iter().map(|(i, v)| (i, v.to_bits())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(i: u32) -> SparseVector {
        SparseVector::from_pairs(vec![(i, 1.0)]).unwrap()
    }

    #[test]
    fn repeats_are_not_novel() {
        let mut monitor = DriftMonitor::new(10);
        assert!(monitor.observe(&shape(1)));
        assert!(!monitor.observe(&shape(1)));
        assert!(monitor.observe(&shape(2)));
        assert_eq!(monitor.known_shapes(), 2);
        assert_eq!(monitor.observed(), 3);
    }

    #[test]
    fn seeding_marks_history_as_known() {
        let mut monitor = DriftMonitor::new(10);
        let history: Vec<SparseVector> = (0..5).map(shape).collect();
        monitor.seed(&history);
        assert_eq!(monitor.known_shapes(), 5);
        assert_eq!(monitor.novelty_rate(), 0.0, "seeding must not move the rate");
        assert!(!monitor.observe(&shape(3)));
        assert!(monitor.observe(&shape(99)));
    }

    #[test]
    fn rate_covers_only_the_horizon() {
        let mut monitor = DriftMonitor::new(2);
        monitor.observe(&shape(1)); // novel
        monitor.observe(&shape(1)); // repeat
        monitor.observe(&shape(1)); // repeat — horizon now [repeat, repeat]
        assert_eq!(monitor.novelty_rate(), 0.0);
        monitor.observe(&shape(2)); // novel — horizon [repeat, novel]
        assert_eq!(monitor.novelty_rate(), 0.5);
    }

    #[test]
    fn drift_requires_full_horizon() {
        let mut monitor = DriftMonitor::new(3);
        monitor.observe(&shape(1));
        monitor.observe(&shape(2));
        assert!(!monitor.is_drifting(0.5), "insufficient evidence");
        monitor.observe(&shape(3));
        assert!(monitor.is_drifting(0.5), "all-novel horizon drifts");
    }

    #[test]
    fn stable_behavior_never_drifts() {
        let mut monitor = DriftMonitor::new(5);
        monitor.seed(&[shape(1), shape(2)]);
        for _ in 0..20 {
            monitor.observe(&shape(1));
            monitor.observe(&shape(2));
        }
        assert!(!monitor.is_drifting(0.2));
        assert_eq!(monitor.novelty_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        let _ = DriftMonitor::new(0);
    }
}
