//! Drift-triggered partial retraining.
//!
//! Profiles go stale: users unlock new repertoire over weeks (Figs. 1–2)
//! and the taxonomy itself evolves (new media subtypes, new apps).
//! Retraining *everyone* on every refresh is O(users) quadratic solver
//! work; this module fingerprints each user's training-window
//! distribution, compares it against the same fingerprint over recent
//! evaluation windows, and retrains **only** the users whose behaviour
//! actually moved — through the existing warm-start
//! [`ProfileTrainer::train_from_vectors_seeded`] path, on the `parcore`
//! pool, bit-deterministic at any worker count.
//!
//! The fingerprint is intentionally cheap and model-free: the fraction of
//! windows activating each feature column. Its L1 distance (normalized by
//! the union support) is 0 for identical distributions and 1 for disjoint
//! ones, so a single threshold works across users of very different
//! activity levels.

use crate::gridsearch::WindowSets;
use crate::trainer::{ProfileError, ProfileTrainer};
use crate::UserProfile;
use ocsvm::{GramMatrix, SparseVector};
use proxylog::UserId;
use std::collections::BTreeMap;

/// Column-activation fingerprint of a set of window feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileFingerprint {
    /// `(column, fraction of windows with a nonzero in that column)`,
    /// ascending by column.
    cols: Vec<(u32, f64)>,
    windows: usize,
}

impl ProfileFingerprint {
    /// Fingerprints a set of window vectors.
    pub fn from_windows(windows: &[SparseVector]) -> Self {
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for window in windows {
            for (col, value) in window.iter() {
                if value != 0.0 {
                    *counts.entry(col).or_insert(0) += 1;
                }
            }
        }
        let n = windows.len().max(1) as f64;
        Self {
            cols: counts.into_iter().map(|(col, c)| (col, c as f64 / n)).collect(),
            windows: windows.len(),
        }
    }

    /// Number of windows folded into the fingerprint.
    pub fn window_count(&self) -> usize {
        self.windows
    }

    /// Normalized L1 distance in `[0, 1]`: mean absolute activation
    /// difference over the union of both supports. 0 ⇔ identical
    /// activation profiles, 1 ⇔ fully disjoint.
    pub fn distance(&self, other: &Self) -> f64 {
        let mut sum = 0.0;
        let mut union = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.cols.len() || j < other.cols.len() {
            union += 1;
            match (self.cols.get(i), other.cols.get(j)) {
                (Some(&(ca, va)), Some(&(cb, vb))) => {
                    if ca == cb {
                        sum += (va - vb).abs();
                        i += 1;
                        j += 1;
                    } else if ca < cb {
                        sum += va;
                        i += 1;
                    } else {
                        sum += vb;
                        j += 1;
                    }
                }
                (Some(&(_, va)), None) => {
                    sum += va;
                    i += 1;
                }
                (None, Some(&(_, vb))) => {
                    sum += vb;
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        if union == 0 {
            0.0
        } else {
            sum / union as f64
        }
    }
}

/// Knobs of [`drift_partial_retrain`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftRetrainConfig {
    /// Fingerprint distance above which a profile is stale.
    pub threshold: f64,
    /// Worker threads for the retrain fan-out (1 = sequential). The
    /// result is bit-identical at any width.
    pub workers: usize,
    /// Users need at least this many windows on *both* sides to be
    /// evaluated (tiny samples make the distance meaningless).
    pub min_windows: usize,
}

impl Default for DriftRetrainConfig {
    fn default() -> Self {
        Self { threshold: 0.15, workers: parcore::default_workers(), min_windows: 8 }
    }
}

/// What [`drift_partial_retrain`] measured and did.
#[derive(Debug)]
pub struct RetrainReport {
    /// Fingerprint distance per evaluated user.
    pub distances: BTreeMap<UserId, f64>,
    /// Users whose distance exceeded the threshold, ascending.
    pub stale: Vec<UserId>,
    /// Stale users successfully retrained (their entry in `profiles` was
    /// replaced).
    pub retrained: usize,
    /// Evaluated users left untouched (distance within the threshold).
    pub skipped_fresh: usize,
    /// Stale users whose retrain failed (profile left as it was).
    pub errors: BTreeMap<UserId, ProfileError>,
}

/// Detects stale profiles by fingerprint drift and retrains only those,
/// in place, from the union of their original training windows and the
/// recent windows that exposed the drift (so the refreshed profile covers
/// both the old and the new behaviour).
///
/// `training` holds the windows the current profiles were built from;
/// `recent` the evaluation-period windows. Users missing from either set,
/// or with fewer than [`DriftRetrainConfig::min_windows`] on either side,
/// are not evaluated. Only users present in `profiles` are considered —
/// this refreshes a trained population, it never grows it.
pub fn drift_partial_retrain(
    trainer: &ProfileTrainer<'_>,
    profiles: &mut BTreeMap<UserId, UserProfile>,
    training: &WindowSets,
    recent: &WindowSets,
    config: &DriftRetrainConfig,
) -> RetrainReport {
    let mut distances = BTreeMap::new();
    let mut stale = Vec::new();
    let mut skipped_fresh = 0usize;
    for user in profiles.keys().copied() {
        let (Some(train), Some(eval)) = (training.get(&user), recent.get(&user)) else {
            continue;
        };
        if train.len() < config.min_windows || eval.len() < config.min_windows {
            continue;
        }
        let distance = ProfileFingerprint::from_windows(train)
            .distance(&ProfileFingerprint::from_windows(eval));
        distances.insert(user, distance);
        if distance > config.threshold {
            stale.push(user);
        } else {
            skipped_fresh += 1;
        }
    }

    let kernel = trainer.profile_params().kernel;
    let results = parcore::parallel_map_workers(&stale, config.workers.max(1), |&user| {
        let mut merged = training[&user].clone();
        merged.extend_from_slice(&recent[&user]);
        let gram = GramMatrix::compute(kernel, &merged);
        trainer.train_from_vectors_seeded(user, &merged, &gram, None).map(|(profile, _)| profile)
    });

    let mut retrained = 0usize;
    let mut errors = BTreeMap::new();
    for (&user, result) in stale.iter().zip(results) {
        match result {
            Ok(profile) => {
                profiles.insert(user, profile);
                retrained += 1;
            }
            Err(e) => {
                errors.insert(user, e);
            }
        }
    }
    RetrainReport { distances, stale, retrained, skipped_fresh, errors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;
    use proxylog::Taxonomy;

    fn vector(cols: &[u32]) -> SparseVector {
        SparseVector::from_pairs(cols.iter().map(|&c| (c, 1.0)).collect::<Vec<_>>()).unwrap()
    }

    fn windows(cols: &[u32], n: usize) -> Vec<SparseVector> {
        (0..n).map(|_| vector(cols)).collect()
    }

    #[test]
    fn identical_windows_have_zero_distance() {
        let a = ProfileFingerprint::from_windows(&windows(&[1, 5, 9], 10));
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.window_count(), 10);
    }

    #[test]
    fn disjoint_windows_have_distance_one() {
        let a = ProfileFingerprint::from_windows(&windows(&[1, 2, 3], 10));
        let b = ProfileFingerprint::from_windows(&windows(&[7, 8, 9], 10));
        assert_eq!(a.distance(&b), 1.0);
        assert_eq!(b.distance(&a), 1.0);
    }

    #[test]
    fn partial_overlap_is_strictly_between() {
        let a = ProfileFingerprint::from_windows(&windows(&[1, 2, 3, 4], 10));
        let b = ProfileFingerprint::from_windows(&windows(&[3, 4, 5, 6], 10));
        let d = a.distance(&b);
        assert!(d > 0.0 && d < 1.0, "got {d}");
        // 4 shifted columns over a 6-column union.
        assert!((d - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fingerprints_are_identical() {
        let a = ProfileFingerprint::from_windows(&[]);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.window_count(), 0);
    }

    /// Builds a small trained population plus window sets where exactly
    /// the users in `drifted` shifted to disjoint columns.
    fn population(users: &[u32], drifted: &[u32]) -> (WindowSets, WindowSets, Vec<u32>) {
        let mut training = WindowSets::new();
        let mut recent = WindowSets::new();
        for &u in users {
            let base = vec![u * 3, u * 3 + 1, u * 3 + 2];
            training.insert(UserId(u), windows(&base, 12));
            let eval_cols: Vec<u32> =
                if drifted.contains(&u) { base.iter().map(|c| c + 500).collect() } else { base };
            recent.insert(UserId(u), windows(&eval_cols, 12));
        }
        (training, recent, drifted.to_vec())
    }

    #[test]
    fn retrains_only_stale_users() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let trainer = ProfileTrainer::new(&vocab);
        let (training, recent, drifted) = population(&[1, 2, 3, 4], &[2, 4]);
        let mut profiles: BTreeMap<UserId, UserProfile> = training
            .iter()
            .map(|(&u, vectors)| (u, trainer.train_from_vectors(u, vectors).unwrap()))
            .collect();
        let before: BTreeMap<UserId, usize> =
            profiles.iter().map(|(&u, p)| (u, p.training_windows())).collect();

        let config = DriftRetrainConfig { workers: 1, ..DriftRetrainConfig::default() };
        let report = drift_partial_retrain(&trainer, &mut profiles, &training, &recent, &config);

        let expected: Vec<UserId> = drifted.iter().map(|&u| UserId(u)).collect();
        assert_eq!(report.stale, expected);
        assert_eq!(report.retrained, 2, "exactly the stale users retrain");
        assert_eq!(report.skipped_fresh, 2);
        assert!(report.errors.is_empty());
        for (&user, profile) in &profiles {
            if expected.contains(&user) {
                // Retrained on training ∪ recent: twice the windows.
                assert_eq!(profile.training_windows(), 24, "stale user {user:?}");
            } else {
                assert_eq!(
                    profile.training_windows(),
                    before[&user],
                    "fresh user {user:?} must be untouched"
                );
            }
        }
    }

    #[test]
    fn below_min_windows_is_not_evaluated() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let trainer = ProfileTrainer::new(&vocab);
        let mut training = WindowSets::new();
        let mut recent = WindowSets::new();
        training.insert(UserId(1), windows(&[1, 2, 3], 3));
        recent.insert(UserId(1), windows(&[800, 801, 802], 3));
        let mut profiles: BTreeMap<UserId, UserProfile> = training
            .iter()
            .map(|(&u, vectors)| (u, trainer.train_from_vectors(u, vectors).unwrap()))
            .collect();
        let report = drift_partial_retrain(
            &trainer,
            &mut profiles,
            &training,
            &recent,
            &DriftRetrainConfig::default(),
        );
        assert!(report.distances.is_empty());
        assert!(report.stale.is_empty());
        assert_eq!(report.retrained, 0);
    }

    #[test]
    fn retrain_is_worker_count_invariant() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let trainer = ProfileTrainer::new(&vocab);
        let (training, recent, _) = population(&[1, 2, 3, 4, 5, 6], &[1, 3, 5]);
        let mut fingerprints = Vec::new();
        for workers in [1usize, 2, 8] {
            let mut profiles: BTreeMap<UserId, UserProfile> = training
                .iter()
                .map(|(&u, vectors)| (u, trainer.train_from_vectors(u, vectors).unwrap()))
                .collect();
            let config = DriftRetrainConfig { workers, ..DriftRetrainConfig::default() };
            let report =
                drift_partial_retrain(&trainer, &mut profiles, &training, &recent, &config);
            assert_eq!(report.retrained, 3);
            fingerprints.push(profiles.values().map(|p| format!("{p:?}")).collect::<Vec<String>>());
        }
        assert_eq!(fingerprints[0], fingerprints[1], "1 vs 2 workers");
        assert_eq!(fingerprints[0], fingerprints[2], "1 vs 8 workers");
    }
}
