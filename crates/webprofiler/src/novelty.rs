//! Temporal-novelty analysis (Sect. IV-B, Figs. 1–2).
//!
//! The profiling assumption is that a user's web transactions stay
//! consistent over time. The paper validates it by splitting each user's
//! history at an epoch delimiter `t` into *observed* and *subsequent*
//! transactions and measuring how much of the subsequent behavior is new:
//!
//! * **feature novelty** (Fig. 1): for the three largest feature
//!   categories — application type, media subtype, website category — the
//!   fraction of values appearing in the subsequent set that never
//!   appeared in the observed set;
//! * **window novelty** (Fig. 2): the fraction of subsequent transaction-
//!   window feature vectors that are not *strictly equal* to any observed
//!   window vector.

use crate::vocab::Vocabulary;
use crate::window::{WindowAggregator, WindowConfig, WindowKey};
use proxylog::{Dataset, Timestamp, Transaction, UserId};
use std::collections::BTreeSet;

/// Novelty ratios for the three largest feature categories of Tab. I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureNovelty {
    /// Novel website categories.
    pub category: f64,
    /// Novel media subtypes.
    pub media_type: f64,
    /// Novel application types.
    pub application_type: f64,
}

/// Feature novelty of one user at a split point, or `None` when the user
/// has no subsequent transactions (the ratio is undefined).
pub fn feature_novelty(
    dataset: &Dataset,
    user: UserId,
    split: Timestamp,
) -> Option<FeatureNovelty> {
    let mut observed_categories = BTreeSet::new();
    let mut observed_subtypes = BTreeSet::new();
    let mut observed_apps = BTreeSet::new();
    let mut subsequent_categories = BTreeSet::new();
    let mut subsequent_subtypes = BTreeSet::new();
    let mut subsequent_apps = BTreeSet::new();
    let mut has_subsequent = false;
    for tx in dataset.for_user(user) {
        if tx.timestamp < split {
            observed_categories.insert(tx.category);
            observed_subtypes.insert(tx.subtype);
            observed_apps.insert(tx.app_type);
        } else {
            has_subsequent = true;
            subsequent_categories.insert(tx.category);
            subsequent_subtypes.insert(tx.subtype);
            subsequent_apps.insert(tx.app_type);
        }
    }
    if !has_subsequent {
        return None;
    }
    fn ratio<T: Ord>(subsequent: &BTreeSet<T>, observed: &BTreeSet<T>) -> f64 {
        if subsequent.is_empty() {
            0.0
        } else {
            subsequent.difference(observed).count() as f64 / subsequent.len() as f64
        }
    }
    Some(FeatureNovelty {
        category: ratio(&subsequent_categories, &observed_categories),
        media_type: ratio(&subsequent_subtypes, &observed_subtypes),
        application_type: ratio(&subsequent_apps, &observed_apps),
    })
}

/// Window novelty of one user at a split point: the fraction of subsequent
/// window vectors with no bit-exact equal among the observed window
/// vectors. `None` when the user has no subsequent windows.
pub fn window_novelty(
    vocab: &Vocabulary,
    config: WindowConfig,
    dataset: &Dataset,
    user: UserId,
    split: Timestamp,
) -> Option<f64> {
    let transactions: Vec<Transaction> = dataset.for_user(user).copied().collect();
    let cut = transactions.partition_point(|tx| tx.timestamp < split);
    let (observed_txs, subsequent_txs) = transactions.split_at(cut);
    let aggregator = WindowAggregator::new(vocab, config);
    let subsequent = aggregator.windows_over(subsequent_txs, WindowKey::User(user));
    if subsequent.is_empty() {
        return None;
    }
    let observed: BTreeSet<Vec<(u32, u64)>> = aggregator
        .windows_over(observed_txs, WindowKey::User(user))
        .iter()
        .map(|w| canonical(w.features.as_pairs()))
        .collect();
    let novel =
        subsequent.iter().filter(|w| !observed.contains(&canonical(w.features.as_pairs()))).count();
    Some(novel as f64 / subsequent.len() as f64)
}

/// Bit-exact canonical form of a sparse vector ("strictly equal" in the
/// paper's terms).
fn canonical(pairs: &[(u32, f64)]) -> Vec<(u32, u64)> {
    pairs.iter().map(|&(i, v)| (i, v.to_bits())).collect()
}

/// Mean and variance over users of one novelty quantity at one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanVariance {
    /// Sample mean over users.
    pub mean: f64,
    /// Population variance over users.
    pub variance: f64,
    /// Number of users contributing (users without subsequent data are
    /// excluded).
    pub users: usize,
}

impl MeanVariance {
    /// Computes mean/variance of a sample (0/0 for an empty slice).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self { mean: 0.0, variance: 0.0, users: 0 };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Self { mean, variance, users: values.len() }
    }
}

/// One row of the Fig. 1 sweep: novelty after `week` weeks of observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureNoveltyRow {
    /// Observation epoch length in weeks.
    pub week: u32,
    /// Category novelty over users.
    pub category: MeanVariance,
    /// Media-type novelty over users.
    pub media_type: MeanVariance,
    /// Application-type novelty over users.
    pub application_type: MeanVariance,
}

/// Sweeps feature novelty over observation epochs of `weeks` (Fig. 1).
/// `start` is the beginning of the monitoring period.
pub fn sweep_feature_novelty(
    dataset: &Dataset,
    start: Timestamp,
    weeks: impl IntoIterator<Item = u32>,
) -> Vec<FeatureNoveltyRow> {
    let users = dataset.users();
    weeks
        .into_iter()
        .map(|week| {
            let split = start + i64::from(week) * 7 * 86_400;
            let mut categories = Vec::new();
            let mut media = Vec::new();
            let mut apps = Vec::new();
            for &user in &users {
                if let Some(novelty) = feature_novelty(dataset, user, split) {
                    categories.push(novelty.category);
                    media.push(novelty.media_type);
                    apps.push(novelty.application_type);
                }
            }
            FeatureNoveltyRow {
                week,
                category: MeanVariance::of(&categories),
                media_type: MeanVariance::of(&media),
                application_type: MeanVariance::of(&apps),
            }
        })
        .collect()
}

/// One row of the Fig. 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowNoveltyRow {
    /// Observation epoch length in weeks.
    pub week: u32,
    /// Window novelty over users.
    pub novelty: MeanVariance,
}

/// Sweeps window novelty over observation epochs of `weeks` (Fig. 2).
pub fn sweep_window_novelty(
    vocab: &Vocabulary,
    config: WindowConfig,
    dataset: &Dataset,
    start: Timestamp,
    weeks: impl IntoIterator<Item = u32>,
) -> Vec<WindowNoveltyRow> {
    let users = dataset.users();
    weeks
        .into_iter()
        .map(|week| {
            let split = start + i64::from(week) * 7 * 86_400;
            let values: Vec<f64> = users
                .iter()
                .filter_map(|&user| window_novelty(vocab, config, dataset, user, split))
                .collect();
            WindowNoveltyRow { week, novelty: MeanVariance::of(&values) }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxylog::{
        AppTypeId, CategoryId, DeviceId, HttpAction, Reputation, SiteId, SubtypeId, Taxonomy,
        UriScheme,
    };

    fn tx(secs: i64, category: u16, subtype: u16, app: u16) -> Transaction {
        Transaction {
            timestamp: Timestamp(secs),
            user: UserId(0),
            device: DeviceId(0),
            site: SiteId(0),
            action: HttpAction::Get,
            scheme: UriScheme::Http,
            category: CategoryId(category),
            subtype: SubtypeId(subtype),
            app_type: AppTypeId(app),
            reputation: Reputation::Minimal,
            private_destination: false,
        }
    }

    fn dataset(txs: Vec<Transaction>) -> Dataset {
        Dataset::new(Taxonomy::paper_scale(), txs)
    }

    #[test]
    fn no_subsequent_data_is_none() {
        let d = dataset(vec![tx(0, 0, 0, 0)]);
        assert_eq!(feature_novelty(&d, UserId(0), Timestamp(100)), None);
    }

    #[test]
    fn fully_repeated_behavior_has_zero_novelty() {
        let d = dataset(vec![tx(0, 1, 2, 3), tx(100, 1, 2, 3)]);
        let n = feature_novelty(&d, UserId(0), Timestamp(50)).unwrap();
        assert_eq!(n.category, 0.0);
        assert_eq!(n.media_type, 0.0);
        assert_eq!(n.application_type, 0.0);
    }

    #[test]
    fn fully_new_behavior_has_full_novelty() {
        let d = dataset(vec![tx(0, 1, 2, 3), tx(100, 9, 8, 7)]);
        let n = feature_novelty(&d, UserId(0), Timestamp(50)).unwrap();
        assert_eq!(n.category, 1.0);
        assert_eq!(n.media_type, 1.0);
        assert_eq!(n.application_type, 1.0);
    }

    #[test]
    fn partial_novelty_is_a_ratio_of_values_not_transactions() {
        // Subsequent categories {1, 9}: one of two is new, regardless of
        // how many transactions carry each.
        let d = dataset(vec![tx(0, 1, 2, 3), tx(100, 1, 2, 3), tx(101, 1, 2, 3), tx(102, 9, 2, 3)]);
        let n = feature_novelty(&d, UserId(0), Timestamp(50)).unwrap();
        assert_eq!(n.category, 0.5);
        assert_eq!(n.media_type, 0.0);
    }

    #[test]
    fn window_novelty_zero_for_identical_windows() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        // Same single-transaction window shape before and after the split
        // (identical aggregated vectors).
        let d = dataset(vec![tx(0, 1, 2, 3), tx(600, 1, 2, 3)]);
        let novelty = window_novelty(
            &vocab,
            WindowConfig::new(60, 60).unwrap(),
            &d,
            UserId(0),
            Timestamp(300),
        )
        .unwrap();
        assert_eq!(novelty, 0.0);
    }

    #[test]
    fn window_novelty_one_for_new_window_shapes() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let d = dataset(vec![tx(0, 1, 2, 3), tx(600, 9, 8, 7)]);
        let novelty = window_novelty(
            &vocab,
            WindowConfig::new(60, 60).unwrap(),
            &d,
            UserId(0),
            Timestamp(300),
        )
        .unwrap();
        assert_eq!(novelty, 1.0);
    }

    #[test]
    fn window_novelty_none_without_subsequent_windows() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let d = dataset(vec![tx(0, 1, 2, 3)]);
        assert_eq!(
            window_novelty(&vocab, WindowConfig::PAPER_DEFAULT, &d, UserId(0), Timestamp(300)),
            None
        );
    }

    #[test]
    fn mean_variance_basics() {
        let mv = MeanVariance::of(&[0.0, 1.0]);
        assert_eq!(mv.mean, 0.5);
        assert_eq!(mv.variance, 0.25);
        assert_eq!(mv.users, 2);
        let empty = MeanVariance::of(&[]);
        assert_eq!(empty.users, 0);
    }

    #[test]
    fn sweep_produces_one_row_per_week() {
        let d = dataset(vec![tx(0, 1, 2, 3), tx(30 * 86_400, 9, 8, 7)]);
        let rows = sweep_feature_novelty(&d, Timestamp(0), 1..=3);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.category.users == 1));
    }

    #[test]
    fn novelty_decays_on_generated_traces() {
        use tracegen::{Scenario, TraceGenerator};
        let scenario = Scenario { weeks: 6, ..Scenario::quick_test() };
        let start = scenario.start;
        let trace = TraceGenerator::new(scenario).generate();
        let trace = trace.filter_min_transactions(500);
        let rows = sweep_feature_novelty(&trace, start, [1, 4]);
        assert!(
            rows[1].application_type.mean <= rows[0].application_type.mean + 0.05,
            "app novelty should decay: week1 {} vs week4 {}",
            rows[0].application_type.mean,
            rows[1].application_type.mean
        );
    }
}
