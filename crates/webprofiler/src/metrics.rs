//! Acceptance metrics (Sect. IV-C, Sect. V-A).
//!
//! A model's quality is evaluated along two axes: the *self-acceptance
//! ratio* `ACCself` (fraction of the profiled user's windows the model
//! accepts — the true positive rate) and the *other-acceptance ratio*
//! `ACCother` (fraction of other users' windows it accepts — the false
//! positive rate). Grid searches maximize the *global acceptance*
//! `ACC = ACCself − ACCother`. The full cross-product of models × test
//! sets is the acceptance confusion matrix of Tab. V.

use crate::profile::UserProfile;
use crate::trainer::parallel_map;
use ocsvm::SparseVector;
use proxylog::UserId;
use std::collections::BTreeMap;
use std::fmt;

/// Fraction of `windows` accepted by `profile` (0.0 for an empty slice).
pub fn acceptance_ratio(profile: &UserProfile, windows: &[SparseVector]) -> f64 {
    if windows.is_empty() {
        return 0.0;
    }
    let accepted = windows.iter().filter(|w| profile.accepts(w)).count();
    accepted as f64 / windows.len() as f64
}

/// [`acceptance_ratio`] over borrowed windows. Grid searches subsample
/// other users' windows by reference, so the shared sample sets never clone
/// feature vectors.
pub fn acceptance_ratio_refs(profile: &UserProfile, windows: &[&SparseVector]) -> f64 {
    if windows.is_empty() {
        return 0.0;
    }
    let accepted = windows.iter().filter(|w| profile.accepts(w)).count();
    accepted as f64 / windows.len() as f64
}

/// Summary acceptance figures averaged over users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceSummary {
    /// Mean self-acceptance ratio (true positive rate), in `[0, 1]`.
    pub acc_self: f64,
    /// Mean other-acceptance ratio (false positive rate), in `[0, 1]`.
    pub acc_other: f64,
}

impl AcceptanceSummary {
    /// Global acceptance `ACC = ACCself − ACCother`.
    pub fn acc(&self) -> f64 {
        self.acc_self - self.acc_other
    }
}

impl fmt::Display for AcceptanceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ACCself={:.1}% ACCother={:.1}% ACC={:.1}%",
            self.acc_self * 100.0,
            self.acc_other * 100.0,
            self.acc() * 100.0
        )
    }
}

/// The acceptance confusion matrix: rows are user models `m_j`, columns are
/// per-user window sets `t_i`; a cell is the fraction of `t_i`'s windows
/// accepted by `m_j` (Tab. V).
///
/// # Examples
///
/// ```no_run
/// use webprofiler::ConfusionMatrix;
/// # fn get() -> (std::collections::BTreeMap<proxylog::UserId, webprofiler::UserProfile>,
/// #     std::collections::BTreeMap<proxylog::UserId, Vec<ocsvm::SparseVector>>) { unimplemented!() }
/// let (profiles, test_windows) = get();
/// let matrix = ConfusionMatrix::compute(&profiles, &test_windows);
/// println!("{matrix}");
/// println!("{}", matrix.summary());
/// ```
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    users: Vec<UserId>,
    /// `cells[j][i]` = acceptance of user `i`'s windows by user `j`'s model.
    cells: Vec<Vec<f64>>,
}

impl ConfusionMatrix {
    /// Evaluates every profile against every user's window set. Only users
    /// present in *both* maps are included (rows and columns use the same
    /// user ordering).
    pub fn compute(
        profiles: &BTreeMap<UserId, UserProfile>,
        windows: &BTreeMap<UserId, Vec<SparseVector>>,
    ) -> Self {
        let users: Vec<UserId> =
            profiles.keys().filter(|user| windows.contains_key(user)).copied().collect();
        let cells = parallel_map(&users, |model_user| {
            let profile = &profiles[model_user];
            users
                .iter()
                .map(|test_user| acceptance_ratio(profile, &windows[test_user]))
                .collect::<Vec<f64>>()
        });
        Self { users, cells }
    }

    /// The users covered, in row/column order.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Acceptance of user `test`'s windows by user `model`'s profile, or
    /// `None` if either is not covered.
    pub fn cell(&self, model: UserId, test: UserId) -> Option<f64> {
        let j = self.users.iter().position(|&u| u == model)?;
        let i = self.users.iter().position(|&u| u == test)?;
        Some(self.cells[j][i])
    }

    /// Diagonal cell for one user.
    pub fn self_acceptance(&self, user: UserId) -> Option<f64> {
        self.cell(user, user)
    }

    /// Mean of the diagonal (the paper's averaged `ACCself`).
    pub fn mean_self_acceptance(&self) -> f64 {
        if self.users.is_empty() {
            return 0.0;
        }
        let total: f64 = (0..self.users.len()).map(|i| self.cells[i][i]).sum();
        total / self.users.len() as f64
    }

    /// Mean of the off-diagonal cells (the paper's averaged `ACCother`).
    pub fn mean_other_acceptance(&self) -> f64 {
        let n = self.users.len();
        if n <= 1 {
            return 0.0;
        }
        let total: f64 = (0..n)
            .flat_map(|j| (0..n).filter(move |&i| i != j).map(move |i| (j, i)))
            .map(|(j, i)| self.cells[j][i])
            .sum();
        total / (n * (n - 1)) as f64
    }

    /// Both means as a summary.
    pub fn summary(&self) -> AcceptanceSummary {
        AcceptanceSummary {
            acc_self: self.mean_self_acceptance(),
            acc_other: self.mean_other_acceptance(),
        }
    }

    /// For a model row, the test users whose windows it accepts at or above
    /// `threshold` (excluding the model's own user) — the "confusions" the
    /// paper discusses for `m13`.
    pub fn confusions(&self, model: UserId, threshold: f64) -> Vec<(UserId, f64)> {
        let Some(j) = self.users.iter().position(|&u| u == model) else {
            return Vec::new();
        };
        self.users
            .iter()
            .enumerate()
            .filter(|&(i, &u)| i != j && self.cells[j][i] >= threshold && u != model)
            .map(|(i, &u)| (u, self.cells[j][i]))
            .collect()
    }
}

impl fmt::Display for ConfusionMatrix {
    /// Renders in the paper's Tab. V layout (percentages, models as rows).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>6}", "")?;
        for user in &self.users {
            write!(f, " {:>5}", format!("t{}", user.0))?;
        }
        writeln!(f)?;
        for (j, user) in self.users.iter().enumerate() {
            write!(f, "{:>6}", format!("m{}", user.0))?;
            for i in 0..self.users.len() {
                write!(f, " {:>5.1}", self.cells[j][i] * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelKind;
    use crate::trainer::ProfileTrainer;
    use crate::vocab::Vocabulary;
    use crate::window::WindowConfig;
    use ocsvm::Kernel;
    use proxylog::Taxonomy;

    /// Builds two synthetic users with clearly distinct windows and their
    /// trained profiles.
    fn two_user_fixture() -> (BTreeMap<UserId, UserProfile>, BTreeMap<UserId, Vec<SparseVector>>) {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let make = |base: u32, n: usize| -> Vec<SparseVector> {
            (0..n)
                .map(|i| {
                    SparseVector::from_pairs(vec![
                        (0, 1.0),
                        (7, 0.3 + 0.05 * (i % 7) as f64), // smooth numeric spread
                        (base + (i % 3) as u32, 1.0),
                    ])
                    .unwrap()
                })
                .collect()
        };
        let windows_a = make(20, 30);
        let windows_b = make(400, 30);
        let trainer = ProfileTrainer::new(&vocab)
            .kind(ModelKind::OcSvm)
            .kernel(Kernel::Rbf { gamma: 1.0 })
            .regularization(0.1)
            .window(WindowConfig::PAPER_DEFAULT);
        let mut profiles = BTreeMap::new();
        profiles.insert(UserId(0), trainer.train_from_vectors(UserId(0), &windows_a).unwrap());
        profiles.insert(UserId(1), trainer.train_from_vectors(UserId(1), &windows_b).unwrap());
        let mut windows = BTreeMap::new();
        windows.insert(UserId(0), windows_a);
        windows.insert(UserId(1), windows_b);
        (profiles, windows)
    }

    #[test]
    fn acceptance_ratio_bounds() {
        let (profiles, windows) = two_user_fixture();
        let ratio = acceptance_ratio(&profiles[&UserId(0)], &windows[&UserId(0)]);
        assert!(ratio > 0.8, "self acceptance {ratio}");
        let cross = acceptance_ratio(&profiles[&UserId(0)], &windows[&UserId(1)]);
        assert!(cross < 0.2, "cross acceptance {cross}");
        assert_eq!(acceptance_ratio(&profiles[&UserId(0)], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_diagonal_dominates() {
        let (profiles, windows) = two_user_fixture();
        let matrix = ConfusionMatrix::compute(&profiles, &windows);
        assert_eq!(matrix.users(), &[UserId(0), UserId(1)]);
        assert!(matrix.self_acceptance(UserId(0)).unwrap() > 0.8);
        assert!(matrix.self_acceptance(UserId(1)).unwrap() > 0.8);
        assert!(matrix.cell(UserId(0), UserId(1)).unwrap() < 0.2);
        let summary = matrix.summary();
        assert!(summary.acc_self > 0.8);
        assert!(summary.acc_other < 0.2);
        assert!(summary.acc() > 0.6);
    }

    #[test]
    fn confusions_lists_high_cells() {
        let (profiles, windows) = two_user_fixture();
        let matrix = ConfusionMatrix::compute(&profiles, &windows);
        assert!(matrix.confusions(UserId(0), 0.5).is_empty());
        let all = matrix.confusions(UserId(0), 0.0);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, UserId(1));
    }

    #[test]
    fn missing_users_return_none() {
        let (profiles, windows) = two_user_fixture();
        let matrix = ConfusionMatrix::compute(&profiles, &windows);
        assert_eq!(matrix.cell(UserId(9), UserId(0)), None);
        assert_eq!(matrix.self_acceptance(UserId(9)), None);
    }

    #[test]
    fn display_renders_percent_table() {
        let (profiles, windows) = two_user_fixture();
        let matrix = ConfusionMatrix::compute(&profiles, &windows);
        let rendered = matrix.to_string();
        assert!(rendered.contains("m0"));
        assert!(rendered.contains("t1"));
    }

    #[test]
    fn summary_display_uses_percent() {
        let s = AcceptanceSummary { acc_self: 0.917, acc_other: 0.073 };
        let text = s.to_string();
        assert!(text.contains("91.7"));
        assert!(text.contains("7.3"));
        assert!((s.acc() - 0.844).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_zeroed() {
        let matrix = ConfusionMatrix::compute(&BTreeMap::new(), &BTreeMap::new());
        assert_eq!(matrix.mean_self_acceptance(), 0.0);
        assert_eq!(matrix.mean_other_acceptance(), 0.0);
    }
}
