//! Work-stealing execution of grid-search cell chains.
//!
//! The pool itself now lives in the dependency-free [`parcore`] crate so
//! that `tracegen` and the benchmark binaries can share it without a
//! dependency cycle through this crate; this module is a thin re-export
//! kept so existing callers (the grid-search sweep, tests) compile
//! unchanged.
//!
//! The model grid search decomposes into independent *chains*: one per
//! (user, kernel) pair, each chain walking the regularization ladder so a
//! finished cell can seed the next one (warm-start α). See [`parcore`] for
//! the deque/stealing/termination design.

pub use parcore::{default_workers, run_chains};
