//! Work-stealing execution of grid-search cell chains.
//!
//! The model grid search decomposes into independent *chains*: one per
//! (user, kernel) pair, each chain walking the regularization ladder so a
//! finished cell can seed the next one (warm-start α). Chains vary wildly in
//! cost — RBF chains on large users dwarf linear chains on small ones — so a
//! static partition of chains over threads leaves workers idle. This module
//! runs the chains on a fixed pool of workers with per-worker deques and
//! work stealing, built on `std::sync` only (no external dependencies).
//!
//! Each worker owns a deque: it pushes and pops its own tasks LIFO (keeping a
//! chain's successor cell hot in cache on the worker that produced its seed)
//! and steals from other workers FIFO (taking the oldest — typically largest
//! remaining — task). Termination uses a shared pending-task counter: a
//! worker pushes a chain's successor *before* decrementing the counter, so
//! the count never reaches zero while work remains.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Counters describing one [`run_chains`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Number of tasks executed across all workers (chain steps, not chains).
    pub executed: u64,
    /// Number of tasks a worker obtained from another worker's deque.
    pub steals: u64,
    /// Number of workers the pool ran with (1 means sequential fast path).
    pub workers: usize,
}

struct Pool<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Tasks pushed but not yet completed. A step that yields a successor
    /// pushes it before decrementing, keeping the count positive while any
    /// chain still has work.
    pending: AtomicUsize,
    steals: AtomicUsize,
    executed: AtomicUsize,
}

impl<T> Pool<T> {
    fn new(workers: usize, seeds: Vec<T>) -> Self {
        let deques: Vec<Mutex<VecDeque<T>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let pending = seeds.len();
        for (i, seed) in seeds.into_iter().enumerate() {
            deques[i % workers].lock().unwrap().push_back(seed);
        }
        Pool {
            deques,
            pending: AtomicUsize::new(pending),
            steals: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
        }
    }

    /// Pop from our own deque (LIFO), falling back to stealing the oldest
    /// task from another worker's deque (FIFO), scanning round-robin.
    fn obtain(&self, me: usize) -> Option<T> {
        if let Some(task) = self.deques[me].lock().unwrap().pop_back() {
            return Some(task);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(task) = self.deques[victim].lock().unwrap().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn work(&self, me: usize, step: &(impl Fn(T) -> Option<T> + Sync)) {
        loop {
            match self.obtain(me) {
                Some(task) => {
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    match step(task) {
                        Some(successor) => {
                            // Push before decrement/increment bookkeeping is
                            // needed: the successor replaces the completed
                            // task one-for-one, so `pending` is unchanged.
                            self.deques[me].lock().unwrap().push_back(successor);
                        }
                        None => {
                            self.pending.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                }
                None => {
                    if self.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Run every chain to completion on `n_workers` threads with work stealing.
///
/// Each seed in `seeds` starts a chain. `step` executes one task and returns
/// the chain's next task, or `None` when the chain is finished. With
/// `n_workers <= 1` (or a single seed) the chains run sequentially on the
/// calling thread — same results, no thread overhead.
pub(crate) fn run_chains<T, F>(seeds: Vec<T>, n_workers: usize, step: F) -> StealStats
where
    T: Send,
    F: Fn(T) -> Option<T> + Sync,
{
    if seeds.is_empty() {
        return StealStats { executed: 0, steals: 0, workers: n_workers.max(1) };
    }
    if n_workers <= 1 || seeds.len() == 1 {
        let mut executed = 0u64;
        for seed in seeds {
            let mut task = Some(seed);
            while let Some(t) = task.take() {
                executed += 1;
                task = step(t);
            }
        }
        return StealStats { executed, steals: 0, workers: 1 };
    }

    let workers = n_workers.min(seeds.len());
    let pool = Pool::new(workers, seeds);
    std::thread::scope(|scope| {
        for me in 1..workers {
            let pool = &pool;
            let step = &step;
            scope.spawn(move || pool.work(me, step));
        }
        pool.work(0, &step);
    });
    StealStats {
        executed: pool.executed.load(Ordering::Relaxed) as u64,
        steals: pool.steals.load(Ordering::Relaxed) as u64,
        workers,
    }
}

/// Number of workers to use when the caller didn't pin one.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A chain task: counts down `remaining` steps, accumulating into `sum`.
    struct Countdown<'a> {
        remaining: u32,
        sum: &'a AtomicU64,
    }

    fn run_countdowns(lengths: &[u32], workers: usize) -> (u64, StealStats) {
        let sum = AtomicU64::new(0);
        let seeds: Vec<Countdown<'_>> =
            lengths.iter().map(|&n| Countdown { remaining: n, sum: &sum }).collect();
        let stats = run_chains(seeds, workers, |task| {
            task.sum.fetch_add(1, Ordering::Relaxed);
            if task.remaining > 1 {
                Some(Countdown { remaining: task.remaining - 1, sum: task.sum })
            } else {
                None
            }
        });
        (sum.load(Ordering::Relaxed), stats)
    }

    #[test]
    fn sequential_path_executes_every_step() {
        let (sum, stats) = run_countdowns(&[3, 1, 5], 1);
        assert_eq!(sum, 9);
        assert_eq!(stats.executed, 9);
        assert_eq!(stats.steals, 0);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn parallel_path_executes_every_step() {
        let lengths: Vec<u32> = (1..=40).map(|i| i % 7 + 1).collect();
        let expected: u64 = lengths.iter().map(|&n| n as u64).sum();
        let (sum, stats) = run_countdowns(&lengths, 4);
        assert_eq!(sum, expected);
        assert_eq!(stats.executed, expected);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn worker_count_is_capped_by_seed_count() {
        let (sum, stats) = run_countdowns(&[2, 2], 8);
        assert_eq!(sum, 4);
        assert!(stats.workers <= 2);
    }

    #[test]
    fn empty_seed_list_is_a_no_op() {
        let stats = run_chains(Vec::<u8>::new(), 4, |_| None);
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn uneven_chains_complete_under_contention() {
        // One long chain plus many short ones: the long chain's worker keeps
        // its successors local while the others drain the short chains.
        let mut lengths = vec![64u32];
        lengths.extend(std::iter::repeat_n(1, 31));
        let (sum, stats) = run_countdowns(&lengths, 8);
        assert_eq!(sum, 64 + 31);
        assert_eq!(stats.executed, 64 + 31);
    }
}
