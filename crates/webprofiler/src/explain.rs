//! Decision explanation for analyst triage.
//!
//! An intrusion-monitoring alert (paper, Sect. I) lands on an
//! administrator's desk; "the one-class model rejected the window" is not
//! actionable. [`explain_decision`] attributes a window's decision value
//! to its individual feature columns by leave-one-out ablation: for every
//! active column, how much would the decision improve if that column were
//! absent? Columns with large positive deltas are what made the window
//! look foreign (e.g. `category:Gambling` on an accountant's account).
//! The method is model-agnostic — it only needs the decision function —
//! so it works identically for OC-SVM and SVDD profiles.

use crate::profile::UserProfile;
use crate::vocab::Vocabulary;
use ocsvm::{SparseVector, SparseVectorBuilder};

/// One column's contribution to a window's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureContribution {
    /// Feature column index.
    pub column: u32,
    /// Human-readable column label (from the vocabulary).
    pub label: String,
    /// The column's value in the window.
    pub value: f64,
    /// Decision-value change if the column were removed: positive means
    /// the column pushed the window towards rejection.
    pub delta: f64,
}

/// Attributes a window's decision value to its active columns by
/// leave-one-out ablation, sorted most-incriminating first.
///
/// Cost is one decision evaluation per active column (windows have a few
/// dozen), so this is cheap enough to run on every alert.
pub fn explain_decision(
    profile: &UserProfile,
    vocab: &Vocabulary,
    window: &SparseVector,
) -> Vec<FeatureContribution> {
    let base = profile.decision_value(window);
    let pairs: Vec<(u32, f64)> = window.iter().collect();
    let mut contributions: Vec<FeatureContribution> = pairs
        .iter()
        .map(|&(column, value)| {
            let mut builder = SparseVectorBuilder::new();
            for &(c, v) in &pairs {
                if c != column {
                    builder.set(c, v);
                }
            }
            let without = profile.decision_value(&builder.build());
            FeatureContribution {
                column,
                label: vocab.column_label(column),
                value,
                delta: without - base,
            }
        })
        .collect();
    contributions.sort_by(|a, b| b.delta.partial_cmp(&a.delta).expect("finite decision values"));
    contributions
}

/// Renders the top `n` contributions as a short analyst-readable report.
pub fn explanation_report(
    profile: &UserProfile,
    vocab: &Vocabulary,
    window: &SparseVector,
    n: usize,
) -> String {
    let decision = profile.decision_value(window);
    let verdict = if decision >= 0.0 { "ACCEPTED" } else { "REJECTED" };
    let mut out =
        format!("window {verdict} by {} (decision value {decision:.4})\n", profile.user());
    for contribution in explain_decision(profile, vocab, window).into_iter().take(n) {
        out.push_str(&format!(
            "  {:+.4}  {} = {}\n",
            contribution.delta, contribution.label, contribution.value
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelKind;
    use crate::trainer::ProfileTrainer;
    use ocsvm::Kernel;
    use proxylog::{Taxonomy, UserId};

    /// Trains on windows always featuring category column 30; probes a
    /// window that swaps in an alien category column.
    fn fixture() -> (UserProfile, Vocabulary, SparseVector, u32) {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let windows: Vec<SparseVector> = (0..40)
            .map(|i| {
                SparseVector::from_pairs(vec![
                    (0, 1.0),
                    (7, 0.2 + 0.04 * (i % 5) as f64),
                    (30, 1.0),
                ])
                .unwrap()
            })
            .collect();
        let profile = ProfileTrainer::new(&vocab)
            .kind(ModelKind::Svdd)
            .kernel(Kernel::Rbf { gamma: 0.7 })
            .regularization(0.4)
            .train_from_vectors(UserId(3), &windows)
            .unwrap();
        let alien_column = 90u32;
        let probe =
            SparseVector::from_pairs(vec![(0, 1.0), (7, 0.24), (alien_column, 1.0)]).unwrap();
        (profile, vocab, probe, alien_column)
    }

    #[test]
    fn alien_column_is_ranked_most_incriminating() {
        let (profile, vocab, probe, alien) = fixture();
        assert!(!profile.accepts(&probe), "probe should be rejected");
        let contributions = explain_decision(&profile, &vocab, &probe);
        assert_eq!(contributions[0].column, alien, "top: {:?}", contributions[0]);
        assert!(contributions[0].delta > 0.0);
    }

    #[test]
    fn contributions_cover_every_active_column() {
        let (profile, vocab, probe, _) = fixture();
        let contributions = explain_decision(&profile, &vocab, &probe);
        assert_eq!(contributions.len(), probe.nnz());
        // Sorted descending by delta.
        for pair in contributions.windows(2) {
            assert!(pair[0].delta >= pair[1].delta);
        }
    }

    #[test]
    fn own_window_has_no_large_positive_delta() {
        let (profile, vocab, _, _) = fixture();
        let own = SparseVector::from_pairs(vec![(0, 1.0), (7, 0.24), (30, 1.0)]).unwrap();
        assert!(profile.accepts(&own));
        let contributions = explain_decision(&profile, &vocab, &own);
        // Removing the habitual category makes things worse, not better.
        let habitual = contributions.iter().find(|c| c.column == 30).unwrap();
        assert!(habitual.delta < 0.0, "habitual column flagged: {habitual:?}");
    }

    #[test]
    fn report_is_readable() {
        let (profile, vocab, probe, _) = fixture();
        let report = explanation_report(&profile, &vocab, &probe, 3);
        assert!(report.contains("REJECTED"));
        assert!(report.contains("category:"));
        assert!(report.lines().count() <= 4);
    }
}
