//! Decision-threshold analysis.
//!
//! The paper reports single operating points (accept iff the decision
//! value is ≥ 0). Shifting the acceptance threshold trades the true
//! positive rate (`ACCself`) against the false positive rate (`ACCother`);
//! this module sweeps that trade-off into an ROC curve and its AUC, used
//! by the threshold ablation in `bench`.

use crate::profile::UserProfile;
use ocsvm::SparseVector;

/// One point of an ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Acceptance threshold on the decision value (accept iff `dv >=
    /// threshold`).
    pub threshold: f64,
    /// True positive rate at this threshold (fraction of the profiled
    /// user's windows accepted).
    pub tpr: f64,
    /// False positive rate (fraction of other users' windows accepted).
    pub fpr: f64,
}

/// Sweeps the acceptance threshold over every distinct decision value,
/// returning points ordered by increasing FPR (ties broken by TPR). The
/// first point is `(−∞ threshold ⇒ 1, 1)`-free: only finite observed
/// thresholds are returned, plus the two trivial endpoints.
///
/// Returns an empty vector if either sample set is empty.
pub fn roc_curve(
    profile: &UserProfile,
    own_windows: &[SparseVector],
    other_windows: &[SparseVector],
) -> Vec<RocPoint> {
    if own_windows.is_empty() || other_windows.is_empty() {
        return Vec::new();
    }
    let mut own: Vec<f64> = own_windows.iter().map(|w| profile.decision_value(w)).collect();
    let mut other: Vec<f64> = other_windows.iter().map(|w| profile.decision_value(w)).collect();
    own.sort_by(|a, b| a.partial_cmp(b).expect("finite decision values"));
    other.sort_by(|a, b| a.partial_cmp(b).expect("finite decision values"));

    // Candidate thresholds: every distinct decision value.
    let mut thresholds: Vec<f64> = own.iter().chain(other.iter()).copied().collect();
    thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    thresholds.dedup();

    let mut points = Vec::with_capacity(thresholds.len() + 2);
    // Accept-everything endpoint.
    points.push(RocPoint { threshold: f64::NEG_INFINITY, tpr: 1.0, fpr: 1.0 });
    for &threshold in &thresholds {
        // Fraction of values >= threshold, via partition_point on the
        // ascending-sorted arrays.
        let tpr = 1.0 - own.partition_point(|&v| v < threshold) as f64 / own.len() as f64;
        let fpr = 1.0 - other.partition_point(|&v| v < threshold) as f64 / other.len() as f64;
        points.push(RocPoint { threshold, tpr, fpr });
    }
    // Reject-everything endpoint.
    points.push(RocPoint { threshold: f64::INFINITY, tpr: 0.0, fpr: 0.0 });
    points.sort_by(|a, b| (a.fpr, a.tpr).partial_cmp(&(b.fpr, b.tpr)).expect("finite rates"));
    points
}

/// Area under an ROC curve via the trapezoid rule. Points must come from
/// [`roc_curve`] (sorted by FPR).
pub fn auc(points: &[RocPoint]) -> f64 {
    points
        .windows(2)
        .map(|pair| {
            let dx = pair[1].fpr - pair[0].fpr;
            let avg_y = 0.5 * (pair[0].tpr + pair[1].tpr);
            dx * avg_y
        })
        .sum()
}

/// The point of the curve closest to the paper's operating regime: the
/// largest `TPR − FPR` (Youden's J, equivalently the maximal `ACC`).
pub fn best_operating_point(points: &[RocPoint]) -> Option<RocPoint> {
    points
        .iter()
        .copied()
        .max_by(|a, b| (a.tpr - a.fpr).partial_cmp(&(b.tpr - b.fpr)).expect("finite rates"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelKind;
    use crate::trainer::ProfileTrainer;
    use crate::vocab::Vocabulary;
    use ocsvm::Kernel;
    use proxylog::{Taxonomy, UserId};

    fn fixture() -> (UserProfile, Vec<SparseVector>, Vec<SparseVector>) {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let make = |base: u32, n: usize| -> Vec<SparseVector> {
            (0..n)
                .map(|i| {
                    SparseVector::from_pairs(vec![
                        (0, 1.0),
                        (7, 0.3 + 0.04 * (i % 6) as f64),
                        (base + (i % 3) as u32, 1.0),
                    ])
                    .unwrap()
                })
                .collect()
        };
        let own = make(40, 50);
        let other = make(600, 50);
        let profile = ProfileTrainer::new(&vocab)
            .kind(ModelKind::Svdd)
            .kernel(Kernel::Rbf { gamma: 0.8 })
            .regularization(0.3)
            .train_from_vectors(UserId(2), &own)
            .unwrap();
        (profile, own, other)
    }

    #[test]
    fn curve_spans_unit_square() {
        let (profile, own, other) = fixture();
        let points = roc_curve(&profile, &own, &other);
        assert!(points.len() >= 3);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for p in &points {
            assert!((0.0..=1.0).contains(&p.tpr) && (0.0..=1.0).contains(&p.fpr));
        }
    }

    #[test]
    fn curve_is_monotone_in_fpr_and_tpr() {
        let (profile, own, other) = fixture();
        let points = roc_curve(&profile, &own, &other);
        for pair in points.windows(2) {
            assert!(pair[0].fpr <= pair[1].fpr);
            assert!(pair[0].tpr <= pair[1].tpr + 1e-12);
        }
    }

    #[test]
    fn separable_data_has_high_auc() {
        let (profile, own, other) = fixture();
        let points = roc_curve(&profile, &own, &other);
        let area = auc(&points);
        assert!(area > 0.9, "AUC = {area}");
        assert!(area <= 1.0 + 1e-12);
    }

    #[test]
    fn random_data_has_mid_auc() {
        // Identical distributions ⇒ AUC ≈ diagonal.
        let (profile, own, _) = fixture();
        let points = roc_curve(&profile, &own, &own);
        let area = auc(&points);
        assert!((area - 0.5).abs() < 0.15, "AUC = {area}");
    }

    #[test]
    fn best_operating_point_beats_endpoints() {
        let (profile, own, other) = fixture();
        let points = roc_curve(&profile, &own, &other);
        let best = best_operating_point(&points).unwrap();
        assert!(best.tpr - best.fpr > 0.5, "J = {}", best.tpr - best.fpr);
    }

    #[test]
    fn empty_inputs_yield_empty_curve() {
        let (profile, own, _) = fixture();
        assert!(roc_curve(&profile, &[], &own).is_empty());
        assert!(roc_curve(&profile, &own, &[]).is_empty());
    }
}
