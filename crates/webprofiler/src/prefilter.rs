//! Candidate prefiltering for two-stage identification.
//!
//! Exhaustive identification scores every closed window against every
//! enrolled profile — O(users) exact decisions per window, the wall
//! between the reproduction and a million-user population. This module
//! provides the cheap first stage of a two-stage path:
//!
//! 1. **Sketch** — every profile is summarized once, at index build time,
//!    as a [`ProfileSketch`]: a bitmask over the [`Vocabulary`]'s feature
//!    columns marking which columns the profile's decision function reads
//!    at all (its support vectors' column union).
//! 2. **Index** — the [`CandidateIndex`] inverts those per-user summaries
//!    into per-*column* postings. Linear-kernel profiles (the paper
//!    corpus default) contribute their exact affine decision terms
//!    ([`ocsvm::LinearDecisionTerms`], the same collapsed weights the
//!    [`ocsvm::LinearBatchScorer`] GEMV path uses); non-linear profiles
//!    fall back to unit-weight coverage postings derived from the sketch
//!    bits.
//! 3. **Shortlist** — per window, walking only the window's non-zero
//!    columns accumulates every user's approximate score in
//!    O(Σ postings) + O(users) instead of O(users × nnz) exact decisions,
//!    and a size-k selection returns the top-k candidate slots. The
//!    caller then reruns the *exact* scorer on the shortlist only.
//!
//! For an all-linear population the approximate score of each user is
//! that user's decision value up to floating-point association (the
//! user-independent `‖x‖²` term SVDD subtracts is applied uniformly). The
//! shortlist therefore keeps, *in addition to* the top-k slots, every
//! linear slot whose score clears a tiny negative margin sized to bound
//! that association error: an accepted user (exact decision `≥ 0`) can
//! never be pruned, while extra borderline candidates are harmlessly
//! rejected by the exact rerank. Shortlist-then-exact is thus
//! bit-identical to exhaustive scoring for all-linear populations at
//! *any* `k` — `k` only budgets how many clearly-rejecting candidates get
//! an exact score. Mixed or non-linear populations make the shortlist a
//! heuristic; measure recall@k with `bench --bin identify_scale`.

use crate::profile::UserProfile;
use crate::vocab::Vocabulary;
use ocsvm::SparseVector;
use proxylog::UserId;
use std::collections::BTreeMap;

/// Category-coverage bitmask of one user's profile: one bit per
/// [`Vocabulary`] feature column, set iff the profile's decision function
/// reads that column (some support vector — or, for linear kernels, the
/// collapsed weight vector — has a non-zero entry there).
#[derive(Debug, Clone)]
pub struct ProfileSketch {
    user: UserId,
    words: Vec<u64>,
    covered: usize,
}

impl ProfileSketch {
    /// Builds a sketch over `n_features` columns from the columns a
    /// profile touches (out-of-range columns are ignored).
    pub fn from_columns<I: IntoIterator<Item = u32>>(
        user: UserId,
        n_features: usize,
        columns: I,
    ) -> Self {
        let mut words = vec![0u64; n_features.div_ceil(64)];
        let mut covered = 0;
        for column in columns {
            let (word, bit) = (column as usize / 64, column as usize % 64);
            if word < words.len() && (column as usize) < n_features && words[word] & (1 << bit) == 0
            {
                words[word] |= 1 << bit;
                covered += 1;
            }
        }
        Self { user, words, covered }
    }

    /// The profiled user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Whether the profile reads `column`.
    pub fn covers(&self, column: u32) -> bool {
        let (word, bit) = (column as usize / 64, column as usize % 64);
        self.words.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of covered columns (set bits).
    pub fn covered_columns(&self) -> usize {
        self.covered
    }

    /// The covered columns, ascending.
    pub fn columns(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(word, &bits)| {
            (0..64)
                .filter(move |bit| bits & (1 << bit) != 0)
                .map(move |bit| (word * 64 + bit) as u32)
        })
    }

    /// How many of the window's non-zero columns the profile covers — the
    /// coverage-overlap score non-linear profiles are ranked by.
    pub fn overlap(&self, features: &SparseVector) -> usize {
        features.iter().filter(|&(column, _)| self.covers(column)).count()
    }
}

/// Inverted candidate index over an enrolled profile population: per-user
/// [`ProfileSketch`]es plus column-major postings, supporting top-k
/// shortlisting of candidate users per window (see the module docs for
/// the two-stage pipeline).
///
/// Users occupy *slots* `0..len()` in ascending [`UserId`] order (the
/// iteration order of the profile map), so a shortlist sorted by slot is
/// sorted by user.
#[derive(Debug, Clone)]
pub struct CandidateIndex {
    users: Vec<UserId>,
    /// Constant term of each user's approximate score.
    bias: Vec<f64>,
    /// `1.0` for users whose exact decision subtracts the probe's squared
    /// norm (linear SVDD), else `0.0`; applied at scoring time so linear
    /// OC-SVM and SVDD users rank on the same decision-value scale.
    norm_coeff: Vec<f64>,
    /// Per-column `(slot, weight)` postings, slot-ascending.
    postings: Vec<Vec<(u32, f64)>>,
    /// Whether each slot carries exact linear decision terms (and so is
    /// protected by the margin guard of [`CandidateIndex::shortlist`]).
    linear: Vec<bool>,
    sketches: Vec<ProfileSketch>,
    linear_users: usize,
}

/// Reusable per-user scratch of [`CandidateIndex::shortlist`]; allocate
/// once per scoring loop, not per window.
#[derive(Debug, Default)]
pub struct ShortlistScratch {
    scores: Vec<f64>,
    magnitudes: Vec<f64>,
}

/// Relative slack of the shortlist's margin guard. The approximate score
/// and the exact decision sum the same ≤ `n_features + 2` terms in
/// different orders, so they differ by at most ~`n·ε` of the summed
/// magnitude (≈ 2e-13 at the paper's 843 columns); `1e-9` leaves three
/// orders of magnitude of headroom while still pruning everything that
/// rejects by a real margin.
const MARGIN_EPS: f64 = 1e-9;

impl CandidateIndex {
    /// Builds the index from an enrolled population (one pass over the
    /// profiles; call once, reuse for every window).
    pub fn build(profiles: &BTreeMap<UserId, UserProfile>, vocab: &Vocabulary) -> Self {
        let n_features = vocab.n_features();
        let mut users = Vec::with_capacity(profiles.len());
        let mut bias = Vec::with_capacity(profiles.len());
        let mut norm_coeff = Vec::with_capacity(profiles.len());
        let mut postings: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_features];
        let mut linear = Vec::with_capacity(profiles.len());
        let mut sketches = Vec::with_capacity(profiles.len());
        let mut linear_users = 0;
        for (slot, (&user, profile)) in profiles.iter().enumerate() {
            let slot = slot as u32;
            let sketch =
                ProfileSketch::from_columns(user, n_features, profile.support_column_union());
            users.push(user);
            linear.push(profile.linear_decision_terms().is_some());
            match profile.linear_decision_terms() {
                Some(terms) => {
                    linear_users += 1;
                    bias.push(terms.bias);
                    norm_coeff.push(if terms.subtracts_probe_norm { 1.0 } else { 0.0 });
                    for (column, weight) in terms.weights.iter() {
                        if (column as usize) < n_features {
                            postings[column as usize].push((slot, weight));
                        }
                    }
                }
                None => {
                    bias.push(0.0);
                    norm_coeff.push(0.0);
                    // Unit-weight coverage postings straight off the
                    // sketch bits: the score counts covered window mass.
                    for column in sketch.columns() {
                        postings[column as usize].push((slot, 1.0));
                    }
                }
            }
            sketches.push(sketch);
        }
        Self { users, bias, norm_coeff, postings, linear, sketches, linear_users }
    }

    /// Enrolled users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Users indexed with exact affine decision terms (linear kernels);
    /// the remainder rank by coverage overlap.
    pub fn linear_users(&self) -> usize {
        self.linear_users
    }

    /// The user in `slot` (ascending by slot).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    pub fn user_at(&self, slot: u32) -> UserId {
        self.users[slot as usize]
    }

    /// The sketch in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= len()`.
    pub fn sketch(&self, slot: u32) -> &ProfileSketch {
        &self.sketches[slot as usize]
    }

    /// Candidate slots for one window, ascending by slot: the `top_k`
    /// best-scoring slots, *plus* every linear slot whose score clears the
    /// margin guard (its exact decision could be non-negative, so pruning
    /// it could change the accepted set — see the module docs).
    ///
    /// `scratch` is caller-provided per-user scratch so a scoring loop
    /// allocates once, not per window. When the population fits in
    /// `top_k` every slot is returned. Score ties keep the smaller slot,
    /// so the result is deterministic.
    pub fn shortlist(
        &self,
        features: &SparseVector,
        top_k: usize,
        scratch: &mut ShortlistScratch,
    ) -> Vec<u32> {
        let n = self.users.len();
        if n == 0 || top_k == 0 {
            return Vec::new();
        }
        if n <= top_k {
            return (0..n as u32).collect();
        }
        let norm = features.squared_norm();
        let ShortlistScratch { scores, magnitudes } = scratch;
        scores.clear();
        scores.extend(self.bias.iter().zip(&self.norm_coeff).map(|(&b, &c)| b - c * norm));
        // Magnitudes track the absolute mass each score summed, bounding
        // its floating-point association error for the margin guard.
        magnitudes.clear();
        magnitudes
            .extend(self.bias.iter().zip(&self.norm_coeff).map(|(&b, &c)| b.abs() + c * norm));
        for (column, value) in features.iter() {
            if let Some(postings) = self.postings.get(column as usize) {
                for &(slot, weight) in postings {
                    let term = weight * value;
                    scores[slot as usize] += term;
                    magnitudes[slot as usize] += term.abs();
                }
            }
        }
        // Size-k selection, kept sorted ascending by score (worst first).
        // Slots arrive ascending, so on ties the incumbent (smaller slot)
        // wins and the pass stays deterministic.
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(top_k + 1);
        for (slot, &score) in scores.iter().enumerate() {
            if best.len() == top_k {
                if score <= best[0].0 {
                    continue;
                }
                best.remove(0);
            }
            let pos = best.partition_point(|&(s, _)| s < score);
            best.insert(pos, (score, slot as u32));
        }
        let mut slots: Vec<u32> = best.into_iter().map(|(_, slot)| slot).collect();
        // Margin guard: a linear slot's score is its exact decision up to
        // association error, so anything not clearly negative stays in.
        for (slot, &score) in scores.iter().enumerate() {
            if self.linear[slot] && score >= -(MARGIN_EPS * (1.0 + magnitudes[slot])) {
                slots.push(slot as u32);
            }
        }
        slots.sort_unstable();
        slots.dedup();
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ModelKind;
    use crate::trainer::ProfileTrainer;
    use ocsvm::Kernel;
    use proxylog::Taxonomy;

    fn vectors(seed: u64, n: usize) -> Vec<SparseVector> {
        (0..n)
            .map(|i| {
                let base = (seed * 7 + 1) as u32 % 800;
                SparseVector::from_pairs(vec![
                    (base, 0.8 + 0.01 * (i % 5) as f64),
                    (base + 3, 1.0),
                    (base + 9, 0.4 + 0.02 * (i % 3) as f64),
                ])
                .unwrap()
            })
            .collect()
    }

    fn population(
        kind: ModelKind,
        kernel: Kernel,
        n_users: usize,
    ) -> (BTreeMap<UserId, UserProfile>, Vocabulary) {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let trainer = ProfileTrainer::new(&vocab).kind(kind).kernel(kernel).regularization(0.5);
        let profiles = (0..n_users)
            .map(|u| {
                let user = UserId(u as u32);
                (user, trainer.train_from_vectors(user, &vectors(u as u64, 12)).unwrap())
            })
            .collect();
        (profiles, vocab)
    }

    #[test]
    fn sketch_marks_exactly_the_touched_columns() {
        let sketch = ProfileSketch::from_columns(UserId(1), 128, [3u32, 64, 64, 127, 500]);
        assert_eq!(sketch.covered_columns(), 3, "dups and out-of-range columns don't count");
        assert!(sketch.covers(3) && sketch.covers(64) && sketch.covers(127));
        assert!(!sketch.covers(4) && !sketch.covers(500));
        assert_eq!(sketch.columns().collect::<Vec<_>>(), vec![3, 64, 127]);
        let window = SparseVector::from_pairs(vec![(3, 1.0), (5, 2.0), (64, 0.5)]).unwrap();
        assert_eq!(sketch.overlap(&window), 2);
    }

    #[test]
    fn shortlist_returns_everyone_when_k_covers_the_population() {
        let (profiles, vocab) = population(ModelKind::Svdd, Kernel::Linear, 5);
        let index = CandidateIndex::build(&profiles, &vocab);
        assert_eq!(index.len(), 5);
        assert_eq!(index.linear_users(), 5);
        let mut scores = ShortlistScratch::default();
        let window = &vectors(2, 1)[0];
        assert_eq!(index.shortlist(window, 5, &mut scores), vec![0, 1, 2, 3, 4]);
        assert_eq!(index.shortlist(window, 100, &mut scores), vec![0, 1, 2, 3, 4]);
        assert!(index.shortlist(window, 0, &mut scores).is_empty());
    }

    #[test]
    fn linear_shortlist_ranks_the_true_user_first() {
        for kind in ModelKind::ALL {
            let (profiles, vocab) = population(kind, Kernel::Linear, 12);
            let index = CandidateIndex::build(&profiles, &vocab);
            let mut scores = ShortlistScratch::default();
            for u in 0..12u32 {
                let probe = &vectors(u as u64, 1)[0];
                let shortlist = index.shortlist(probe, 3, &mut scores);
                assert_eq!(shortlist.len(), 3);
                assert!(
                    shortlist.iter().any(|&slot| index.user_at(slot) == UserId(u)),
                    "{kind}: user {u} missing from top-3 {shortlist:?}"
                );
            }
        }
    }

    #[test]
    fn linear_shortlist_contains_every_accepted_user() {
        // The exactness guarantee behind the two-stage equivalence: with
        // all-linear profiles, accepted users always outrank rejected
        // ones, so any shortlist of size ≥ |accepted| covers them all.
        let (profiles, vocab) = population(ModelKind::Svdd, Kernel::Linear, 12);
        let index = CandidateIndex::build(&profiles, &vocab);
        let mut scores = ShortlistScratch::default();
        for u in 0..12u64 {
            for probe in &vectors(u, 4) {
                let accepted: Vec<UserId> = profiles
                    .iter()
                    .filter(|(_, p)| p.accepts(probe))
                    .map(|(&user, _)| user)
                    .collect();
                let k = accepted.len().max(1);
                let shortlist = index.shortlist(probe, k, &mut scores);
                for user in &accepted {
                    assert!(
                        shortlist.iter().any(|&slot| index.user_at(slot) == *user),
                        "accepted {user:?} outside top-{k} for probe of user {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn margin_guard_keeps_accepted_users_even_at_k_one() {
        // The unconditional half of the equivalence guarantee: even a
        // shortlist budget of 1 may not prune an accepting linear user.
        for kind in ModelKind::ALL {
            let (profiles, vocab) = population(kind, Kernel::Linear, 12);
            let index = CandidateIndex::build(&profiles, &vocab);
            let mut scores = ShortlistScratch::default();
            for u in 0..12u64 {
                for probe in &vectors(u, 4) {
                    let shortlist = index.shortlist(probe, 1, &mut scores);
                    for (&user, profile) in &profiles {
                        if profile.accepts(probe) {
                            assert!(
                                shortlist.iter().any(|&slot| index.user_at(slot) == user),
                                "{kind}: accepted {user:?} pruned at k=1 ({shortlist:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn nonlinear_profiles_fall_back_to_coverage_postings() {
        let (profiles, vocab) = population(ModelKind::OcSvm, Kernel::Rbf { gamma: 0.5 }, 8);
        let index = CandidateIndex::build(&profiles, &vocab);
        assert_eq!(index.linear_users(), 0);
        let mut scores = ShortlistScratch::default();
        let probe = &vectors(3, 1)[0];
        let shortlist = index.shortlist(probe, 2, &mut scores);
        assert_eq!(shortlist.len(), 2);
        // The true user's sketch covers the whole probe, so it ranks in
        // the top overlap tier.
        assert!(
            shortlist.iter().any(|&slot| index.user_at(slot) == UserId(3)),
            "coverage shortlist {shortlist:?} missed the covering user"
        );
    }

    #[test]
    fn shortlist_is_deterministic_and_slot_sorted() {
        let (profiles, vocab) = population(ModelKind::Svdd, Kernel::Linear, 9);
        let index = CandidateIndex::build(&profiles, &vocab);
        let probe = &vectors(4, 1)[0];
        let mut scores = ShortlistScratch::default();
        let a = index.shortlist(probe, 4, &mut scores);
        let b = index.shortlist(probe, 4, &mut scores);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "slots not ascending: {a:?}");
    }
}
