//! Parameter calibration without impostor data.
//!
//! The paper's grid search picks `ν`/`C` by maximizing
//! `ACCself − ACCother`, which requires *other users'* windows. A real
//! deployment profiling a single account may have nothing but that
//! account's history. [`calibrate_without_impostors`] selects the
//! strictest parameters whose *held-out own* acceptance still meets a
//! target: the training windows are split chronologically, candidates are
//! trained on the older part, and the newest part plays the role of
//! "future traffic the profile must keep accepting".

use crate::profile::{ProfileParams, UserProfile};
use crate::trainer::{ProfileError, ProfileTrainer};
use ocsvm::SparseVector;
use proxylog::UserId;

/// Outcome of a calibration run.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// The selected parameters.
    pub params: ProfileParams,
    /// Held-out self-acceptance of the selected candidate.
    pub holdout_acceptance: f64,
    /// Fraction of *training* windows the selected model rejects — the
    /// strictness proxy used for ranking.
    pub training_rejection: f64,
    /// The profile trained with the selected parameters on the full
    /// window set.
    pub profile: UserProfile,
}

/// Selects, among `candidates`, the parameters with the highest
/// training-set rejection (the strictest boundary — the best available
/// proxy for a low false-positive rate when no impostor data exists)
/// subject to the held-out self-acceptance staying at or above
/// `target_acceptance`. Falls back to the candidate with the best held-out
/// acceptance when none meets the target.
///
/// # Errors
///
/// [`ProfileError::NoWindows`] when `windows` has fewer than 4 windows
/// (nothing to hold out), or the error of the last failing candidate when
/// none trains.
pub fn calibrate_without_impostors(
    trainer: &ProfileTrainer<'_>,
    user: UserId,
    windows: &[SparseVector],
    candidates: &[ProfileParams],
    target_acceptance: f64,
) -> Result<Calibration, ProfileError> {
    if windows.len() < 4 {
        return Err(ProfileError::NoWindows { user });
    }
    let cut = windows.len() * 3 / 4;
    let (fit, holdout) = windows.split_at(cut);

    let mut best_meeting: Option<(f64, f64, ProfileParams)> = None; // (rejection, acceptance)
    let mut best_overall: Option<(f64, f64, ProfileParams)> = None; // (acceptance, rejection)
    let mut last_error = ProfileError::NoWindows { user };
    for &params in candidates {
        let candidate_trainer = trainer.clone().params(params);
        let profile = match candidate_trainer.train_from_vectors(user, fit) {
            Ok(profile) => profile,
            Err(e) => {
                last_error = e;
                continue;
            }
        };
        let holdout_acceptance = crate::metrics::acceptance_ratio(&profile, holdout);
        let training_rejection = 1.0 - crate::metrics::acceptance_ratio(&profile, fit);
        if holdout_acceptance >= target_acceptance
            && best_meeting.as_ref().is_none_or(|&(rejection, _, _)| training_rejection > rejection)
        {
            best_meeting = Some((training_rejection, holdout_acceptance, params));
        }
        if best_overall.as_ref().is_none_or(|&(acceptance, _, _)| holdout_acceptance > acceptance) {
            best_overall = Some((holdout_acceptance, training_rejection, params));
        }
    }

    let (params, holdout_acceptance, training_rejection) = match (best_meeting, best_overall) {
        (Some((rejection, acceptance, params)), _) => (params, acceptance, rejection),
        (None, Some((acceptance, rejection, params))) => (params, acceptance, rejection),
        (None, None) => return Err(last_error),
    };
    // Retrain the winner on everything.
    let profile = trainer.clone().params(params).train_from_vectors(user, windows)?;
    Ok(Calibration { params, holdout_acceptance, training_rejection, profile })
}

/// A reasonable default candidate list: both families across the paper's
/// coarse regularization grid with the linear kernel.
pub fn default_candidates() -> Vec<ProfileParams> {
    use crate::gridsearch::ModelGridSearch;
    use crate::profile::ModelKind;
    let mut out = Vec::new();
    for kind in ModelKind::ALL {
        for &regularization in ModelGridSearch::COARSE_REGULARIZATIONS.iter() {
            out.push(ProfileParams { kind, kernel: ocsvm::Kernel::Linear, regularization });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;
    use proxylog::Taxonomy;

    fn windows(n: usize) -> Vec<SparseVector> {
        (0..n)
            .map(|i| {
                SparseVector::from_pairs(vec![
                    (0, 1.0),
                    (7, 0.2 + 0.04 * (i % 5) as f64),
                    (40 + (i % 3) as u32, 1.0),
                ])
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn calibration_meets_the_target() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let trainer = ProfileTrainer::new(&vocab);
        let own = windows(60);
        let result =
            calibrate_without_impostors(&trainer, UserId(1), &own, &default_candidates(), 0.85)
                .unwrap();
        assert!(result.holdout_acceptance >= 0.85, "{result:?}");
        // The calibrated profile accepts its own data and rejects foreign
        // shapes.
        let foreign = SparseVector::from_pairs(vec![(0, 1.0), (600, 1.0)]).unwrap();
        assert!(!result.profile.accepts(&foreign));
    }

    #[test]
    fn stricter_candidates_win_when_harmless() {
        // All windows identical: every candidate accepts the holdout, so
        // the strictest (highest training rejection) is chosen; with a
        // perfectly tight cluster rejection is ~0 for all, so it should
        // simply pick something meeting the target.
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let trainer = ProfileTrainer::new(&vocab);
        let own = windows(40);
        let result =
            calibrate_without_impostors(&trainer, UserId(2), &own, &default_candidates(), 0.7)
                .unwrap();
        assert!(result.holdout_acceptance >= 0.7);
        assert!(result.training_rejection <= 0.35);
    }

    #[test]
    fn too_few_windows_is_an_error() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let trainer = ProfileTrainer::new(&vocab);
        let err = calibrate_without_impostors(
            &trainer,
            UserId(3),
            &windows(3),
            &default_candidates(),
            0.9,
        )
        .unwrap_err();
        assert!(matches!(err, ProfileError::NoWindows { .. }));
    }

    #[test]
    fn empty_candidate_list_is_an_error() {
        let vocab = Vocabulary::new(Taxonomy::paper_scale());
        let trainer = ProfileTrainer::new(&vocab);
        assert!(calibrate_without_impostors(&trainer, UserId(4), &windows(20), &[], 0.9).is_err());
    }
}
