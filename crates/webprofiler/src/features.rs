//! Feature extraction: transactions → sparse feature vectors.
//!
//! A single transaction maps to a sparse vector over the vocabulary
//! (Sect. III-B); a *window* of transactions is aggregated into one vector
//! with logical disjunction for binary columns and the mean for numeric
//! columns (Sect. III-C).

use crate::vocab::Vocabulary;
use ocsvm::SparseVector;
use proxylog::Transaction;

/// Extracts the feature vector of a single transaction.
///
/// Zero-valued numeric features (e.g. an unverified, minimal-risk, public
/// transaction) are omitted from the sparse representation; kernels treat
/// missing and explicit zero identically.
///
/// # Examples
///
/// ```
/// use proxylog::Taxonomy;
/// use webprofiler::{extract_transaction, Vocabulary};
/// # use proxylog::{AppTypeId, CategoryId, DeviceId, HttpAction, Reputation, SiteId,
/// #     SubtypeId, Timestamp, Transaction, UriScheme, UserId};
///
/// let vocab = Vocabulary::new(Taxonomy::paper_scale());
/// # let tx = Transaction {
/// #     timestamp: Timestamp(0), user: UserId(0), device: DeviceId(0), site: SiteId(0),
/// #     action: HttpAction::Get, scheme: UriScheme::Http, category: CategoryId(0),
/// #     subtype: SubtypeId(0), app_type: AppTypeId(0), reputation: Reputation::Minimal,
/// #     private_destination: false,
/// # };
/// let features = extract_transaction(&vocab, &tx);
/// // GET, HTTP, verified, category, supertype, subtype and application set.
/// assert!(features.nnz() >= 6);
/// ```
pub fn extract_transaction(vocab: &Vocabulary, tx: &Transaction) -> SparseVector {
    let pairs: Vec<(u32, f64)> =
        vocab.transaction_columns(tx).into_iter().filter(|&(_, value)| value != 0.0).collect();
    SparseVector::from_pairs(pairs).expect("transaction_columns yields ascending columns")
}

/// How a window's transactions are folded into one vector.
///
/// The paper specifies [`AggregationMode::Disjunction`]; the alternative
/// is kept for the ablation study in `bench` (DESIGN.md §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregationMode {
    /// The paper's rule: binary columns by logical OR, numeric columns by
    /// the mean (Sect. III-C).
    #[default]
    Disjunction,
    /// Ablation: binary columns carry the *fraction* of the window's
    /// transactions setting them (numeric columns still the mean). Richer
    /// but noisier — window population varies wildly between page loads.
    Frequency,
}

/// Aggregates a window of transactions into one feature vector:
/// binary columns by logical OR, numeric columns by averaging over the
/// window's transactions (Sect. III-C).
///
/// Returns an empty vector for an empty window; callers emit only
/// non-empty windows.
pub fn aggregate_window(vocab: &Vocabulary, window: &[Transaction]) -> SparseVector {
    aggregate_window_with(vocab, window, AggregationMode::Disjunction)
}

/// [`aggregate_window`] with an explicit [`AggregationMode`].
pub fn aggregate_window_with(
    vocab: &Vocabulary,
    window: &[Transaction],
    mode: AggregationMode,
) -> SparseVector {
    if window.is_empty() {
        return SparseVector::new();
    }
    let n = window.len() as f64;
    let private_col = vocab.private_flag_column();
    let risk_col = vocab.risk_column();
    let verified_col = vocab.verified_column();

    // Binary columns: collect set bits. Numeric columns: running sums.
    let mut binary_cols: Vec<u32> = Vec::with_capacity(window.len() * 6);
    let mut private_sum = 0.0;
    let mut risk_sum = 0.0;
    let mut verified_sum = 0.0;
    for tx in window {
        for (col, value) in vocab.transaction_columns(tx) {
            if col == private_col {
                private_sum += value;
            } else if col == risk_col {
                risk_sum += value;
            } else if col == verified_col {
                verified_sum += value;
            } else if value != 0.0 {
                binary_cols.push(col);
            }
        }
    }
    binary_cols.sort_unstable();

    let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(binary_cols.len() + 3);
    match mode {
        AggregationMode::Disjunction => {
            binary_cols.dedup();
            for col in binary_cols {
                pairs.push((col, 1.0));
            }
        }
        AggregationMode::Frequency => {
            let mut i = 0;
            while i < binary_cols.len() {
                let col = binary_cols[i];
                let mut count = 0usize;
                while i < binary_cols.len() && binary_cols[i] == col {
                    count += 1;
                    i += 1;
                }
                pairs.push((col, count as f64 / n));
            }
        }
    }
    for (col, sum) in
        [(private_col, private_sum), (risk_col, risk_sum), (verified_col, verified_sum)]
    {
        let mean = sum / n;
        if mean != 0.0 {
            pairs.push((col, mean));
        }
    }
    pairs.sort_unstable_by_key(|&(c, _)| c);
    SparseVector::from_pairs(pairs).expect("columns deduplicated and sorted")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxylog::{
        AppTypeId, CategoryId, DeviceId, HttpAction, Reputation, SiteId, SubtypeId, Taxonomy,
        Timestamp, UriScheme, UserId,
    };

    fn vocab() -> Vocabulary {
        Vocabulary::new(Taxonomy::paper_scale())
    }

    fn tx(action: HttpAction, scheme: UriScheme, rep: Reputation) -> Transaction {
        Transaction {
            timestamp: Timestamp(0),
            user: UserId(0),
            device: DeviceId(0),
            site: SiteId(0),
            action,
            scheme,
            category: CategoryId(3),
            subtype: SubtypeId(1),
            app_type: AppTypeId(2),
            reputation: rep,
            private_destination: false,
        }
    }

    #[test]
    fn single_transaction_sets_expected_bits() {
        let v = vocab();
        let t = tx(HttpAction::Get, UriScheme::Http, Reputation::Minimal);
        let features = extract_transaction(&v, &t);
        assert_eq!(features.get(v.action_column(HttpAction::Get)), 1.0);
        assert_eq!(features.get(v.action_column(HttpAction::Post)), 0.0);
        assert_eq!(features.get(v.scheme_column(UriScheme::Http)), 1.0);
        assert_eq!(features.get(v.verified_column()), 1.0);
        assert_eq!(features.get(v.risk_column()), 0.0);
        assert_eq!(features.get(v.category_column(CategoryId(3))), 1.0);
    }

    #[test]
    fn paper_aggregation_example() {
        // Reproduce the Sect. III-C example: three transactions ->
        // CONNECT OR'd to 1, HTTP OR'd to 1, reputation averaged to 0.167,
        // verified averaged to 0.667.
        let v = vocab();
        let t1 = tx(HttpAction::Connect, UriScheme::Http, Reputation::Minimal); // rep 0, verified 1
        let t2 = tx(HttpAction::Get, UriScheme::Https, Reputation::Medium); // rep 0.5, verified 1
        let t3 = tx(HttpAction::Get, UriScheme::Http, Reputation::Unverified); // rep 0, verified 0
        let window = [t1, t2, t3];
        let agg = aggregate_window(&v, &window);
        assert_eq!(agg.get(v.action_column(HttpAction::Connect)), 1.0);
        assert_eq!(agg.get(v.scheme_column(UriScheme::Http)), 1.0);
        assert!((agg.get(v.risk_column()) - 0.5 / 3.0).abs() < 1e-9);
        assert!((agg.get(v.verified_column()) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn binary_columns_are_disjunction_not_count() {
        let v = vocab();
        let t = tx(HttpAction::Get, UriScheme::Http, Reputation::Minimal);
        let window = vec![t; 10];
        let agg = aggregate_window(&v, &window);
        assert_eq!(agg.get(v.action_column(HttpAction::Get)), 1.0);
        assert_eq!(agg.get(v.category_column(CategoryId(3))), 1.0);
    }

    #[test]
    fn private_fraction_is_averaged() {
        let v = vocab();
        let mut a = tx(HttpAction::Get, UriScheme::Http, Reputation::Minimal);
        a.private_destination = true;
        let b = tx(HttpAction::Get, UriScheme::Http, Reputation::Minimal);
        let agg = aggregate_window(&v, &[a, b, b, b]);
        assert!((agg.get(v.private_flag_column()) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn aggregate_of_one_equals_extraction() {
        let v = vocab();
        let t = tx(HttpAction::Post, UriScheme::Https, Reputation::High);
        assert_eq!(aggregate_window(&v, &[t]), extract_transaction(&v, &t));
    }

    #[test]
    fn empty_window_is_empty_vector() {
        assert!(aggregate_window(&vocab(), &[]).is_empty());
    }

    #[test]
    fn aggregation_is_order_invariant() {
        let v = vocab();
        let t1 = tx(HttpAction::Connect, UriScheme::Http, Reputation::Minimal);
        let t2 = tx(HttpAction::Get, UriScheme::Https, Reputation::Medium);
        let t3 = tx(HttpAction::Head, UriScheme::Http, Reputation::Unverified);
        let a = aggregate_window(&v, &[t1, t2, t3]);
        let b = aggregate_window(&v, &[t3, t1, t2]);
        assert_eq!(a, b);
    }

    #[test]
    fn frequency_mode_counts_fractions() {
        let v = vocab();
        let t1 = tx(HttpAction::Get, UriScheme::Http, Reputation::Minimal);
        let t2 = tx(HttpAction::Post, UriScheme::Http, Reputation::Minimal);
        let agg = aggregate_window_with(&v, &[t1, t1, t1, t2], AggregationMode::Frequency);
        assert!((agg.get(v.action_column(HttpAction::Get)) - 0.75).abs() < 1e-12);
        assert!((agg.get(v.action_column(HttpAction::Post)) - 0.25).abs() < 1e-12);
        assert!((agg.get(v.scheme_column(UriScheme::Http)) - 1.0).abs() < 1e-12);
        // Numeric columns identical to the paper mode.
        let paper = aggregate_window(&v, &[t1, t1, t1, t2]);
        assert_eq!(agg.get(v.verified_column()), paper.get(v.verified_column()));
    }

    #[test]
    fn frequency_mode_of_single_tx_equals_paper_mode() {
        let v = vocab();
        let t = tx(HttpAction::Head, UriScheme::Https, Reputation::High);
        assert_eq!(
            aggregate_window_with(&v, &[t], AggregationMode::Frequency),
            aggregate_window(&v, &[t])
        );
    }

    #[test]
    fn distinct_categories_all_present() {
        let v = vocab();
        let mut t1 = tx(HttpAction::Get, UriScheme::Http, Reputation::Minimal);
        let mut t2 = t1;
        t1.category = CategoryId(1);
        t2.category = CategoryId(2);
        let agg = aggregate_window(&v, &[t1, t2]);
        assert_eq!(agg.get(v.category_column(CategoryId(1))), 1.0);
        assert_eq!(agg.get(v.category_column(CategoryId(2))), 1.0);
    }
}
