//! First-order Markov-chain baseline over transaction sequences.
//!
//! The closest prior work the paper compares against (Verde et al.,
//! ICDCS 2014 [11]) fingerprints users with hidden Markov models over
//! their flow sequences. This module provides the analogous sequence
//! baseline on web-transaction logs: a per-user first-order Markov chain
//! over website-category symbols, scored by mean log-likelihood per
//! transition and thresholded on a training quantile. Unlike the window
//! vectors of the main pipeline it consumes the *raw transaction slices*
//! of each window ([`WindowAggregator::user_window_slices`]).
//!
//! [`WindowAggregator::user_window_slices`]: crate::WindowAggregator::user_window_slices

use crate::trainer::ProfileError;
use proxylog::{Transaction, UserId};
use std::fmt;

/// Per-user first-order Markov chain over category symbols.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MarkovProfile {
    user: UserId,
    n_states: usize,
    /// Row-major `n_states × n_states` transition log-probabilities
    /// (Laplace-smoothed).
    log_transitions: Vec<f64>,
    /// Initial-symbol log-probabilities (Laplace-smoothed).
    log_initial: Vec<f64>,
    /// Acceptance threshold on the mean log-likelihood per symbol.
    threshold: f64,
    training_windows: usize,
}

impl MarkovProfile {
    /// Trains the chain on a user's training windows (each a time-ordered
    /// transaction slice) with Laplace smoothing, then calibrates the
    /// acceptance threshold at the `quantile` of training-window scores.
    ///
    /// # Errors
    ///
    /// [`ProfileError::NoWindows`] when `windows` is empty or holds no
    /// transactions.
    ///
    /// # Panics
    ///
    /// Panics if `n_states` is zero or any transaction's category id is
    /// `>= n_states`.
    pub fn train(
        user: UserId,
        windows: &[Vec<Transaction>],
        n_states: usize,
        quantile: f64,
    ) -> Result<Self, ProfileError> {
        assert!(n_states > 0, "need at least one state");
        let total: usize = windows.iter().map(Vec::len).sum();
        if total == 0 {
            return Err(ProfileError::NoWindows { user });
        }
        let mut transition_counts = vec![1.0f64; n_states * n_states]; // Laplace
        let mut initial_counts = vec![1.0f64; n_states];
        for window in windows {
            let mut previous: Option<usize> = None;
            for tx in window {
                let state = tx.category.0 as usize;
                assert!(state < n_states, "category {state} out of {n_states} states");
                match previous {
                    None => initial_counts[state] += 1.0,
                    Some(p) => transition_counts[p * n_states + state] += 1.0,
                }
                previous = Some(state);
            }
        }
        let log_transitions = normalize_rows(&transition_counts, n_states);
        let initial_total: f64 = initial_counts.iter().sum();
        let log_initial: Vec<f64> =
            initial_counts.iter().map(|&c| (c / initial_total).ln()).collect();

        let mut profile = Self {
            user,
            n_states,
            log_transitions,
            log_initial,
            threshold: f64::NEG_INFINITY,
            training_windows: windows.len(),
        };
        let mut scores: Vec<f64> = windows
            .iter()
            .filter(|w| !w.is_empty())
            .map(|w| profile.mean_log_likelihood(w))
            .collect();
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
        let quantile = quantile.clamp(0.0, 1.0);
        let index = ((scores.len() as f64 * quantile) as usize).min(scores.len() - 1);
        profile.threshold = scores[index];
        Ok(profile)
    }

    /// The profiled user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Number of Markov states (category vocabulary size).
    pub fn state_count(&self) -> usize {
        self.n_states
    }

    /// Training windows used.
    pub fn training_windows(&self) -> usize {
        self.training_windows
    }

    /// Mean log-likelihood per symbol of a window's category sequence.
    ///
    /// # Panics
    ///
    /// Panics if `window` is empty or contains out-of-range categories.
    pub fn mean_log_likelihood(&self, window: &[Transaction]) -> f64 {
        assert!(!window.is_empty(), "cannot score an empty window");
        let mut total = 0.0;
        let mut previous: Option<usize> = None;
        for tx in window {
            let state = tx.category.0 as usize;
            assert!(state < self.n_states, "category out of range");
            total += match previous {
                None => self.log_initial[state],
                Some(p) => self.log_transitions[p * self.n_states + state],
            };
            previous = Some(state);
        }
        total / window.len() as f64
    }

    /// Signed decision value (`>= 0` accepts): mean log-likelihood minus
    /// the calibrated threshold.
    pub fn decision_value(&self, window: &[Transaction]) -> f64 {
        self.mean_log_likelihood(window) - self.threshold
    }

    /// Whether the window's sequence is accepted as this user's behavior.
    pub fn accepts(&self, window: &[Transaction]) -> bool {
        self.decision_value(window) >= 0.0
    }
}

impl fmt::Display for MarkovProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "markov-baseline({}, {} states, threshold {:.3}, {} windows)",
            self.user, self.n_states, self.threshold, self.training_windows
        )
    }
}

/// Row-normalizes counts into log-probabilities.
fn normalize_rows(counts: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; counts.len()];
    for row in 0..n {
        let total: f64 = counts[row * n..(row + 1) * n].iter().sum();
        for col in 0..n {
            out[row * n + col] = (counts[row * n + col] / total).ln();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxylog::{
        AppTypeId, CategoryId, DeviceId, HttpAction, Reputation, SiteId, SubtypeId, Timestamp,
        UriScheme,
    };

    fn tx(category: u16) -> Transaction {
        Transaction {
            timestamp: Timestamp(0),
            user: UserId(0),
            device: DeviceId(0),
            site: SiteId(0),
            action: HttpAction::Get,
            scheme: UriScheme::Http,
            category: CategoryId(category),
            subtype: SubtypeId(0),
            app_type: AppTypeId(0),
            reputation: Reputation::Minimal,
            private_destination: false,
        }
    }

    fn windows_of(pattern: &[u16], n: usize) -> Vec<Vec<Transaction>> {
        (0..n).map(|_| pattern.iter().map(|&c| tx(c)).collect()).collect()
    }

    #[test]
    fn rejects_empty_training() {
        let err = MarkovProfile::train(UserId(0), &[], 4, 0.1).unwrap_err();
        assert!(matches!(err, ProfileError::NoWindows { .. }));
    }

    #[test]
    fn accepts_training_pattern_rejects_alien_pattern() {
        // User habitually alternates 0 -> 1 -> 0 -> 1.
        let own = windows_of(&[0, 1, 0, 1, 0], 20);
        let profile = MarkovProfile::train(UserId(1), &own, 4, 0.05).unwrap();
        let accepted = own.iter().filter(|w| profile.accepts(w)).count();
        assert!(accepted >= 19, "accepted {accepted}");
        // A user living in states 2 -> 3 looks nothing like it.
        let alien = windows_of(&[2, 3, 2, 3, 2], 20);
        let false_accepts = alien.iter().filter(|w| profile.accepts(w)).count();
        assert_eq!(false_accepts, 0);
    }

    #[test]
    fn likely_transitions_score_higher() {
        let own = windows_of(&[0, 1, 0, 1], 10);
        let profile = MarkovProfile::train(UserId(1), &own, 3, 0.1).unwrap();
        let likely = profile.mean_log_likelihood(&windows_of(&[0, 1], 1)[0]);
        let unlikely = profile.mean_log_likelihood(&windows_of(&[0, 2], 1)[0]);
        assert!(likely > unlikely, "{likely} <= {unlikely}");
    }

    #[test]
    fn smoothing_keeps_unseen_transitions_finite() {
        let own = windows_of(&[0, 0, 0], 5);
        let profile = MarkovProfile::train(UserId(1), &own, 3, 0.1).unwrap();
        let score = profile.mean_log_likelihood(&windows_of(&[2, 1, 2], 1)[0]);
        assert!(score.is_finite());
    }

    #[test]
    fn quantile_controls_threshold() {
        let own = windows_of(&[0, 1, 0], 20);
        let loose = MarkovProfile::train(UserId(1), &own, 3, 0.0).unwrap();
        let strict = MarkovProfile::train(UserId(1), &own, 3, 0.9).unwrap();
        // Identical windows ⇒ identical scores ⇒ equal thresholds are
        // possible; perturb with one noisy window to create spread.
        let mut varied = own;
        varied.push(windows_of(&[2, 2, 2], 1).pop().unwrap());
        let loose = MarkovProfile::train(UserId(1), &varied, 3, 0.0).unwrap_or(loose);
        let strict = MarkovProfile::train(UserId(1), &varied, 3, 0.9).unwrap_or(strict);
        let probe = windows_of(&[2, 2, 2], 1);
        assert!(loose.decision_value(&probe[0]) >= strict.decision_value(&probe[0]));
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn scoring_empty_window_panics() {
        let profile = MarkovProfile::train(UserId(0), &windows_of(&[0], 3), 2, 0.1).unwrap();
        let _ = profile.mean_log_likelihood(&[]);
    }

    #[test]
    fn display_names_user_and_states() {
        let profile = MarkovProfile::train(UserId(7), &windows_of(&[0, 1], 3), 5, 0.1).unwrap();
        let text = profile.to_string();
        assert!(text.contains("user_7") && text.contains("5 states"));
    }
}
