//! Learning-parameter optimization (Sect. IV-C).
//!
//! The paper optimizes in two stages:
//!
//! 1. [`WindowGridSearch`] (Tab. II): the window duration `D` and shift
//!    `S` are optimized *globally* over all users, with a fixed SVDD /
//!    linear / `C = 0.5` model. `ACCself` is computed on the same windows
//!    the model was trained on, `ACCother` against every other user's
//!    training windows. The paper retains `D = 60 s, S = 30 s` — not the
//!    best global `ACC`, but the best `ACCself`, which is what matters for
//!    fast identification.
//! 2. [`ModelGridSearch`] (Tab. III): the kernel and `ν`/`C` value are
//!    optimized *per user* at the retained window configuration, picking
//!    the combination with maximal `ACC = ACCself − ACCother`.

use crate::metrics::{AcceptanceSummary, ConfusionMatrix};
use crate::profile::{ModelKind, ProfileParams, UserProfile};
use crate::schedule::{self, run_chains};
use crate::trainer::{parallel_map, subsample_evenly, ProfileTrainer};
use crate::vocab::Vocabulary;
use crate::window::WindowConfig;
use ocsvm::{
    ApproxParams, ArenaCrossGram, ArenaGram, ArenaStats, CrossGram, GramMatrix, Kernel, KernelKind,
    KernelRowArena, SolverBackend, SolverOptions, SparseVector,
};
use proxylog::{Dataset, UserId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-user window feature vectors, the shared input of both grid-search
/// stages (computing them once per window configuration dominates the cost
/// otherwise).
pub type WindowSets = BTreeMap<UserId, Vec<SparseVector>>;

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Computes user-specific window sets for every user of `dataset`, capped
/// at `max_windows_per_user` by even subsampling.
pub fn compute_window_sets(
    vocab: &Vocabulary,
    dataset: &Dataset,
    config: WindowConfig,
    max_windows_per_user: Option<usize>,
) -> WindowSets {
    let mut trainer = ProfileTrainer::new(vocab).window(config);
    if let Some(max) = max_windows_per_user {
        trainer = trainer.max_training_windows(max);
    }
    let users = dataset.users();
    let sets = parallel_map(&users, |&user| trainer.training_vectors(dataset, user));
    users.into_iter().zip(sets).collect()
}

/// One row of the Tab. II sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowGridRow {
    /// The window configuration evaluated.
    pub config: WindowConfig,
    /// Averaged acceptance over users.
    pub summary: AcceptanceSummary,
}

/// Stage 1: global window-parameter sweep (Tab. II).
#[derive(Debug, Clone)]
pub struct WindowGridSearch<'a> {
    vocab: &'a Vocabulary,
    params: ProfileParams,
    max_windows_per_user: Option<usize>,
}

impl<'a> WindowGridSearch<'a> {
    /// The `(D, S)` pairs of the paper's Tab. II, in seconds.
    pub const PAPER_CANDIDATES: [(u32, u32); 6] =
        [(60, 6), (60, 30), (300, 60), (600, 60), (1800, 300), (3600, 300)];

    /// Creates the sweep with the paper's fixed model for this stage:
    /// SVDD, linear kernel, `C = 0.5`.
    pub fn new(vocab: &'a Vocabulary) -> Self {
        Self {
            vocab,
            params: ProfileParams {
                kind: ModelKind::Svdd,
                kernel: Kernel::Linear,
                regularization: 0.5,
            },
            max_windows_per_user: Some(1_000),
        }
    }

    /// Overrides the fixed model used during the sweep.
    pub fn params(mut self, params: ProfileParams) -> Self {
        self.params = params;
        self
    }

    /// Caps the training windows per user (even subsample). `None` removes
    /// the cap.
    pub fn max_windows_per_user(mut self, max: Option<usize>) -> Self {
        self.max_windows_per_user = max;
        self
    }

    /// Evaluates one window configuration: train a model per user on its
    /// windows, score the full confusion matrix on those same windows.
    pub fn evaluate(&self, train: &Dataset, config: WindowConfig) -> WindowGridRow {
        let windows = compute_window_sets(self.vocab, train, config, self.max_windows_per_user);
        let trainer = ProfileTrainer::new(self.vocab).window(config).params(self.params);
        let users: Vec<UserId> = windows.keys().copied().collect();
        let trained =
            parallel_map(&users, |user| trainer.train_from_vectors(*user, &windows[user]).ok());
        let profiles: BTreeMap<_, _> = users
            .iter()
            .zip(trained)
            .filter_map(|(user, profile)| profile.map(|p| (*user, p)))
            .collect();
        let matrix = ConfusionMatrix::compute(&profiles, &windows);
        WindowGridRow { config, summary: matrix.summary() }
    }

    /// Runs the sweep over `configs` (defaults to the paper's candidates
    /// when empty), returning one row per configuration.
    pub fn run(&self, train: &Dataset, configs: &[WindowConfig]) -> Vec<WindowGridRow> {
        let default: Vec<WindowConfig> = Self::PAPER_CANDIDATES
            .iter()
            .map(|&(d, s)| WindowConfig::new(d, s).expect("paper candidates are valid"))
            .collect();
        let configs = if configs.is_empty() { &default } else { configs };
        configs.iter().map(|&config| self.evaluate(train, config)).collect()
    }
}

/// One cell of the Tab. III sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelGridCell {
    /// Kernel family evaluated (with vocabulary-default parameters).
    pub kernel: KernelKind,
    /// `ν` or `C` value evaluated.
    pub regularization: f64,
    /// Acceptance summary for this user's model.
    pub summary: AcceptanceSummary,
}

/// Counters describing one [`ModelGridSearch::sweep_cells`] run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepStats {
    /// Users swept.
    pub users: usize,
    /// (user, kernel) chains scheduled.
    pub chains: usize,
    /// Cells that trained and scored successfully.
    pub cells: u64,
    /// Cell tasks executed (includes cells whose training failed).
    pub executed: u64,
    /// Tasks obtained by work stealing.
    pub steals: u64,
    /// Workers the scheduler ran with.
    pub workers: usize,
    /// Cells solved from a warm-start `α` seed.
    pub warm_cells: u64,
    /// Cells solved from the cold uniform start.
    pub cold_cells: u64,
    /// SMO iterations spent in warm-started cells.
    pub warm_iterations: u64,
    /// SMO iterations spent in cold-started cells.
    pub cold_iterations: u64,
    /// Cells whose kept result was solved by exact SMO.
    pub exact_cells: u64,
    /// Cells whose kept result was solved by an approximate backend
    /// (ensemble decomposition or sampled Frank–Wolfe).
    pub approx_cells: u64,
    /// [`SweepBackend::Auto`] chains that fell back to exact SMO after
    /// calibration.
    pub auto_fallbacks: u64,
    /// Wall-clock nanoseconds spent inside the solver, summed over every
    /// cell solve of the sweep (including the discarded half of each
    /// [`SweepBackend::Auto`] calibration). Scoring and scheduling are
    /// excluded, so this isolates what a backend choice changes.
    pub train_nanos: u64,
    /// Kernel-row arena activity during the sweep (delta, not lifetime).
    pub arena: ArenaStats,
}

impl SweepStats {
    /// Mean SMO iterations per warm-started cell.
    pub fn warm_iterations_per_cell(&self) -> f64 {
        if self.warm_cells == 0 {
            return 0.0;
        }
        self.warm_iterations as f64 / self.warm_cells as f64
    }

    /// Mean SMO iterations per cold-started cell.
    pub fn cold_iterations_per_cell(&self) -> f64 {
        if self.cold_cells == 0 {
            return 0.0;
        }
        self.cold_iterations as f64 / self.cold_cells as f64
    }
}

/// Solver-backend routing for [`ModelGridSearch::sweep_cells`].
///
/// Every (kernel, regularization) cell of the sweep trains through one
/// [`SolverBackend`]; this policy decides which backend each cell gets.
/// Routing applies to the chain-scheduled entry points
/// ([`sweep_cells`](ModelGridSearch::sweep_cells),
/// [`sweep_all`](ModelGridSearch::sweep_all),
/// [`optimize_all`](ModelGridSearch::optimize_all)); the legacy
/// [`run_user`](ModelGridSearch::run_user) reference path — and the final
/// per-user profiles of
/// [`optimized_profiles`](ModelGridSearch::optimized_profiles) — always
/// train exact.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepBackend {
    /// Every cell trains with the same backend. `Fixed(ExactSmo)` (the
    /// default) reproduces the legacy sweep bit-for-bit.
    Fixed(SolverBackend),
    /// A default backend plus per-cell overrides, keyed by exact
    /// `(kernel, regularization)` match.
    PerCell {
        /// Backend for cells without an override.
        default: SolverBackend,
        /// `(kernel, regularization, backend)` overrides.
        overrides: Vec<(KernelKind, f64, SolverBackend)>,
    },
    /// Per-chain calibration: each chain's first trainable cell is solved
    /// with both `cheap` and exact SMO, and the whole chain keeps the
    /// cheap backend unless its validation `ACC` trails the exact one by
    /// more than `tolerance` — then the chain falls back to exact
    /// (counted in [`SweepStats::auto_fallbacks`]).
    ///
    /// `ACC` differences live in `[-2, 2]`, so `tolerance ≤ -2` always
    /// falls back (every chain runs exact) and `tolerance ≥ 2` never does
    /// (every chain runs `cheap`). The calibration cell's discarded solve
    /// is excluded from the warm/cold iteration statistics.
    Auto {
        /// The approximate backend to try first.
        cheap: SolverBackend,
        /// Maximal acceptable `ACC_exact − ACC_cheap` before falling back.
        tolerance: f64,
    },
}

impl Default for SweepBackend {
    fn default() -> Self {
        Self::Fixed(SolverBackend::ExactSmo)
    }
}

/// Stage 2: per-user kernel and `ν`/`C` sweep (Tab. III).
///
/// The sweep is executed by a work-stealing scheduler over *chains*: one
/// chain per (user, kernel), walking the regularization ladder so each
/// cell's `α` solution can warm-start the next (opt in with
/// [`warm_start`](Self::warm_start)). Kernel rows are cached in a
/// process-wide, memory-budgeted [`KernelRowArena`] shared by training and
/// scoring (override with [`arena`](Self::arena)).
#[derive(Debug, Clone)]
pub struct ModelGridSearch<'a> {
    vocab: &'a Vocabulary,
    window: WindowConfig,
    kind: ModelKind,
    max_other_windows: usize,
    regularizations: Vec<f64>,
    warm_start: bool,
    backend: SweepBackend,
    approx: ApproxParams,
    arena: Option<Arc<KernelRowArena>>,
    workers: Option<usize>,
}

impl<'a> ModelGridSearch<'a> {
    /// The `C` (and `ν`) values of the paper's Tab. III rows.
    pub const PAPER_REGULARIZATIONS: [f64; 15] =
        [0.999, 0.99, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.01, 0.001];

    /// A coarser grid for sweeps that optimize many users × window
    /// configurations (Tab. IV).
    pub const COARSE_REGULARIZATIONS: [f64; 8] = [0.99, 0.9, 0.7, 0.5, 0.3, 0.1, 0.05, 0.01];

    /// Creates the sweep at a window configuration (the paper fixes
    /// `D = 60 s, S = 30 s` for this stage) for one classifier family.
    pub fn new(vocab: &'a Vocabulary, window: WindowConfig, kind: ModelKind) -> Self {
        Self {
            vocab,
            window,
            kind,
            max_other_windows: 150,
            regularizations: Self::PAPER_REGULARIZATIONS.to_vec(),
            warm_start: false,
            backend: SweepBackend::default(),
            approx: ApproxParams::default(),
            arena: None,
            workers: None,
        }
    }

    /// Routes solver backends across the sweep's cells (default:
    /// [`SweepBackend::Fixed`] exact SMO, the bit-exact legacy path). See
    /// [`SweepBackend`] for the per-cell and auto-calibrated policies.
    /// Warm-start `α` seeds are only honored by exact-SMO cells; the
    /// approximate backends ignore them (see [`SolverBackend`]).
    pub fn solver_backend(mut self, backend: SweepBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Tunes the approximate backends' parameters (ensemble shard size,
    /// Frank–Wolfe subsample size / seed / duality-gap tolerance). Exact
    /// SMO cells ignore them.
    pub fn approx_params(mut self, approx: ApproxParams) -> Self {
        self.approx = approx;
        self
    }

    /// Enables warm-start `α`-seeding between adjacent regularization
    /// values of a chain (default off). Seeding does not change the
    /// optimization problem — a seeded solve reaches the same objective —
    /// but the solver stops anywhere inside its KKT tolerance band, so
    /// knife-edge acceptance decisions (windows whose decision value is
    /// `≈ 0`) may land differently than from a cold start. Leave it off to
    /// reproduce the cold-start sweep bit-for-bit; turn it on to cut SMO
    /// iterations on fine regularization ladders.
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Uses a specific kernel-row arena instead of the process-wide
    /// [`KernelRowArena::global`] default, e.g. one with a custom byte
    /// budget for this sweep.
    pub fn arena(mut self, arena: Arc<KernelRowArena>) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Pins the scheduler's worker count (defaults to the machine's
    /// available parallelism; `1` forces a sequential sweep).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Caps the windows sampled from each *other* user when estimating
    /// `ACCother` inside the sweep (an even subsample; the estimate is a
    /// mean, so a moderate sample suffices and cuts the sweep cost by an
    /// order of magnitude). Use `usize::MAX` for the exact value.
    pub fn max_other_windows(mut self, max: usize) -> Self {
        self.max_other_windows = max;
        self
    }

    /// Replaces the `ν`/`C` grid (defaults to
    /// [`Self::PAPER_REGULARIZATIONS`]).
    pub fn regularizations(mut self, values: Vec<f64>) -> Self {
        self.regularizations = values;
        self
    }

    /// Per-user `ACCother` samples: an even subsample of every user's
    /// windows, borrowed from `windows`. Computed once and shared across
    /// all cells — and, in [`optimize_all`](Self::optimize_all), across all
    /// users — instead of cloning each user's vectors for every sweep.
    fn other_window_samples<'w>(
        &self,
        windows: &'w WindowSets,
    ) -> BTreeMap<UserId, Vec<&'w SparseVector>> {
        windows
            .iter()
            .map(|(&u, w)| (u, subsample_evenly(w.iter().collect(), self.max_other_windows)))
            .collect()
    }

    /// Evaluates every kernel × regularization combination for one user.
    ///
    /// `windows` must contain the user's own training windows as well as
    /// the other users' (used for `ACCother`). Cells whose training fails
    /// (e.g. an infeasible `C` for the window count) are skipped.
    ///
    /// The kernel matrix over the user's windows is computed exactly once
    /// per kernel (as a shared [`ocsvm::GramMatrix`]) and reused by every
    /// regularization of that kernel's sweep, so the whole sweep performs
    /// 4 Gram computations instead of 60.
    pub fn run_user(&self, windows: &WindowSets, user: UserId) -> Vec<ModelGridCell> {
        let samples = self.other_window_samples(windows);
        self.run_user_sampled(windows, &samples, user)
    }

    fn run_user_sampled<'w>(
        &self,
        windows: &'w WindowSets,
        samples: &BTreeMap<UserId, Vec<&'w SparseVector>>,
        user: UserId,
    ) -> Vec<ModelGridCell> {
        let Some(own) = windows.get(&user) else {
            return Vec::new();
        };
        let n_features = self.vocab.n_features();
        // The `ACCother` probes of every other user, flattened so one
        // `CrossGram` row covers them all; `ranges` recovers the per-user
        // slices for the per-user acceptance means.
        let mut probes: Vec<&'w SparseVector> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for (_, w) in samples.iter().filter(|&(&u, _)| u != user) {
            let start = probes.len();
            probes.extend(w.iter().copied());
            ranges.push((start, probes.len()));
        }
        // One Gram matrix (and, for non-linear kernels, one cross matrix
        // against the probes) per kernel over this user's training windows.
        // Rows materialize lazily, each at most once, shared read-only by
        // every regularization of the sweep — training *and* scoring. The
        // linear kernel needs neither for scoring: its models collapse to a
        // single weight vector, scored below as one dense GEMV per batch.
        let own_refs: Vec<&'w SparseVector> = own.iter().collect();
        let kernels: Vec<(KernelKind, Kernel, GramMatrix<'w>, Option<CrossGram<'w>>)> =
            KernelKind::ALL
                .iter()
                .map(|&kind| {
                    let kernel = Kernel::default_for(kind, n_features);
                    let cross = (kernel != Kernel::Linear)
                        .then(|| CrossGram::new(kernel, own, probes.clone()));
                    (kind, kernel, GramMatrix::compute(kernel, own), cross)
                })
                .collect();
        let combos: Vec<(usize, f64)> = (0..kernels.len())
            .flat_map(|k| self.regularizations.iter().map(move |&c| (k, c)))
            .collect();
        let results = parallel_map(&combos, |&(k, regularization)| {
            let (kernel_kind, kernel, ref gram, ref cross) = kernels[k];
            let trainer = ProfileTrainer::new(self.vocab)
                .window(self.window)
                .kind(self.kind)
                .kernel(kernel)
                .regularization(regularization);
            let profile = trainer.train_from_vectors_with_gram(user, own, gram).ok()?;
            let shared = cross.as_ref().and_then(|cross| {
                Some((
                    profile.training_decision_values(gram)?,
                    profile.cross_decision_values(cross)?,
                ))
            });
            // Linear models have no CrossGram: their collapsed weight
            // vector scores each batch as one dense GEMV, bit-identical
            // to per-point decisions.
            let (self_values, probe_values) = match shared {
                Some(values) => values,
                None => (
                    profile.batch_decision_values(&own_refs),
                    profile.batch_decision_values(&probes),
                ),
            };
            Some(ModelGridCell {
                kernel: kernel_kind,
                regularization,
                summary: acceptance_summary(own.len(), &ranges, &self_values, &probe_values),
            })
        });
        results.into_iter().flatten().collect()
    }

    /// The best parameters for one user (maximal `ACC`), or `None` when no
    /// cell trained successfully.
    pub fn best_for_user(&self, windows: &WindowSets, user: UserId) -> Option<ProfileParams> {
        self.pick_best(self.run_user(windows, user))
    }

    fn pick_best(&self, cells: Vec<ModelGridCell>) -> Option<ProfileParams> {
        let best = cells
            .into_iter()
            .max_by(|a, b| a.summary.acc().partial_cmp(&b.summary.acc()).expect("ACC is finite"))?;
        Some(ProfileParams {
            kind: self.kind,
            kernel: Kernel::default_for(best.kernel, self.vocab.n_features()),
            regularization: best.regularization,
        })
    }

    /// Optimizes every user in the window sets through the work-stealing
    /// sweep (see [`sweep_all`](Self::sweep_all), whose statistics this
    /// convenience wrapper discards).
    ///
    /// The `ACCother` window samples are drawn once and shared by reference
    /// across all users' sweeps. Kernel rows live in the shared
    /// [`KernelRowArena`], so memory is bounded by the arena budget rather
    /// than the sum of per-user Gram matrices.
    pub fn optimize_all(&self, windows: &WindowSets) -> BTreeMap<UserId, ProfileParams> {
        self.sweep_all(windows).0
    }

    /// Trains the final per-user profiles at each user's swept-optimal
    /// parameters — the population whose decision weights feed candidate
    /// prefiltering: pass the result straight to
    /// [`CandidateIndex::build`](crate::CandidateIndex::build) (linear
    /// winners export their collapsed weights and bias via
    /// [`UserProfile::linear_decision_terms`], non-linear winners their
    /// coverage sketch).
    ///
    /// Users whose sweep produced no trainable cell are omitted, like
    /// [`optimize_all`](Self::optimize_all) omits them.
    pub fn optimized_profiles(&self, windows: &WindowSets) -> BTreeMap<UserId, UserProfile> {
        let best = self.optimize_all(windows);
        let entries: Vec<(&UserId, &ProfileParams)> = best.iter().collect();
        let trained = parallel_map(&entries, |(&user, params)| {
            let own = windows.get(&user)?;
            ProfileTrainer::new(self.vocab)
                .window(self.window)
                .kind(params.kind)
                .kernel(params.kernel)
                .regularization(params.regularization)
                .train_from_vectors(user, own)
                .ok()
        });
        entries
            .into_iter()
            .zip(trained)
            .filter_map(|((&user, _), profile)| profile.map(|p| (user, p)))
            .collect()
    }

    /// Optimizes every user and reports sweep statistics: best parameters
    /// per user (maximal `ACC`, ties broken exactly as
    /// [`best_for_user`](Self::best_for_user)) plus scheduler / warm-start /
    /// arena counters.
    pub fn sweep_all(&self, windows: &WindowSets) -> (BTreeMap<UserId, ProfileParams>, SweepStats) {
        let (cells, stats) = self.sweep_cells(windows);
        let best = cells
            .into_iter()
            .filter_map(|(user, cells)| self.pick_best(cells).map(|p| (user, p)))
            .collect();
        (best, stats)
    }

    /// Evaluates every (user, kernel, regularization) cell of the sweep on
    /// the work-stealing scheduler, returning each user's cells (ordered by
    /// kernel, then regularization — the same order
    /// [`run_user`](Self::run_user) produces) and the sweep statistics.
    ///
    /// The sweep is decomposed into one *chain* per (user, kernel). A chain
    /// walks [`regularizations`](Self::regularizations) in order, and each
    /// finished cell's `α` vector seeds the next cell's solver (when
    /// [`warm_start`](Self::warm_start) is on; a failed cell passes the
    /// last good seed along). Chains are independent and scheduled across
    /// workers with work stealing, so one expensive user cannot serialize
    /// the sweep. All kernel rows — training and probe scoring — are cached
    /// in the shared memory-budgeted arena keyed by user, kernel and a
    /// content fingerprint.
    pub fn sweep_cells(
        &self,
        windows: &WindowSets,
    ) -> (BTreeMap<UserId, Vec<ModelGridCell>>, SweepStats) {
        let samples = self.other_window_samples(windows);
        let arena = self.arena.clone().unwrap_or_else(|| Arc::clone(KernelRowArena::global()));
        let arena_before = arena.stats();
        let n_features = self.vocab.n_features();

        // Per-user context shared by the user's chains: own windows and the
        // flattened `ACCother` probes with their per-user ranges (identical
        // construction to `run_user_sampled`).
        struct UserCtx<'w> {
            user: UserId,
            own: &'w [SparseVector],
            own_refs: Vec<&'w SparseVector>,
            probes: Vec<&'w SparseVector>,
            ranges: Vec<(usize, usize)>,
        }
        let contexts: Vec<UserCtx<'_>> = windows
            .iter()
            .filter(|(_, own)| !own.is_empty())
            .map(|(&user, own)| {
                let mut probes: Vec<&SparseVector> = Vec::new();
                let mut ranges: Vec<(usize, usize)> = Vec::new();
                for (_, w) in samples.iter().filter(|&(&u, _)| u != user) {
                    let start = probes.len();
                    probes.extend(w.iter().copied());
                    ranges.push((start, probes.len()));
                }
                UserCtx { user, own, own_refs: own.iter().collect(), probes, ranges }
            })
            .collect();

        // One chain per (user, kernel), in user-major / `KernelKind::ALL`
        // order so reassembled cells match the legacy cell order (and thus
        // `pick_best`'s tie-breaking) exactly.
        struct Chain<'w> {
            ctx: usize,
            kind: KernelKind,
            kernel: Kernel,
            gram: ArenaGram<'w>,
            cross: Option<ArenaCrossGram<'w>>,
        }
        let chains: Vec<Chain<'_>> = contexts
            .iter()
            .enumerate()
            .flat_map(|(ctx_idx, ctx)| {
                let arena = &arena;
                KernelKind::ALL.iter().map(move |&kind| {
                    let kernel = Kernel::default_for(kind, n_features);
                    let owner = u64::from(ctx.user.0);
                    let cross = (kernel != Kernel::Linear).then(|| {
                        ArenaCrossGram::new(kernel, ctx.own, ctx.probes.clone(), arena, owner)
                    });
                    Chain {
                        ctx: ctx_idx,
                        kind,
                        kernel,
                        gram: ArenaGram::new(kernel, ctx.own, arena, owner),
                        cross,
                    }
                })
            })
            .collect();

        struct CellTask {
            chain: usize,
            reg_idx: usize,
            seed: Option<Vec<f64>>,
            auto_choice: Option<SolverBackend>,
            cells: Vec<ModelGridCell>,
        }
        let seeds: Vec<CellTask> = (0..chains.len())
            .map(|chain| CellTask {
                chain,
                reg_idx: 0,
                seed: None,
                auto_choice: None,
                cells: Vec::with_capacity(self.regularizations.len()),
            })
            .collect();

        let finished: Mutex<Vec<Option<Vec<ModelGridCell>>>> =
            Mutex::new((0..chains.len()).map(|_| None).collect());
        let ok_cells = AtomicU64::new(0);
        let warm_cells = AtomicU64::new(0);
        let cold_cells = AtomicU64::new(0);
        let warm_iterations = AtomicU64::new(0);
        let cold_iterations = AtomicU64::new(0);
        let exact_cells = AtomicU64::new(0);
        let approx_cells = AtomicU64::new(0);
        let auto_fallbacks = AtomicU64::new(0);
        let train_nanos = AtomicU64::new(0);

        let steal_stats = run_chains(
            seeds,
            self.workers.unwrap_or_else(schedule::default_workers),
            |mut task: CellTask| {
                let chain = &chains[task.chain];
                let ctx = &contexts[chain.ctx];
                let regularization = self.regularizations[task.reg_idx];
                // Trains this cell with `backend` and scores it; `None`
                // when the parameters are infeasible for the window count.
                let train_cell = |backend: SolverBackend, seed: Option<&[f64]>| {
                    let trainer = ProfileTrainer::new(self.vocab)
                        .window(self.window)
                        .kind(self.kind)
                        .kernel(chain.kernel)
                        .regularization(regularization)
                        .solver_options(SolverOptions {
                            backend,
                            approx: self.approx,
                            ..SolverOptions::default()
                        });
                    let solve_started = std::time::Instant::now();
                    let solved =
                        trainer.train_from_vectors_seeded(ctx.user, ctx.own, &chain.gram, seed);
                    train_nanos
                        .fetch_add(solve_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    solved.ok().map(|(profile, alpha)| {
                        let iterations = profile.diagnostics().iterations as u64;
                        let cell = self.evaluate_cell(&profile, chain.kind, regularization, {
                            CellInputs {
                                gram: &chain.gram,
                                cross: chain.cross.as_ref(),
                                own_refs: &ctx.own_refs,
                                probes: &ctx.probes,
                                ranges: &ctx.ranges,
                            }
                        });
                        (cell, alpha, iterations)
                    })
                };
                let seed = if self.warm_start { task.seed.as_deref() } else { None };
                let (backend, run) = match &self.backend {
                    SweepBackend::Fixed(backend) => (*backend, train_cell(*backend, seed)),
                    SweepBackend::PerCell { default, overrides } => {
                        let backend = overrides
                            .iter()
                            .find(|&&(k, r, _)| k == chain.kind && r == regularization)
                            .map_or(*default, |&(_, _, b)| b);
                        (backend, train_cell(backend, seed))
                    }
                    SweepBackend::Auto { cheap, tolerance } => match task.auto_choice {
                        Some(backend) => (backend, train_cell(backend, seed)),
                        None => {
                            // Calibration cell: solve with both candidates
                            // and compare validation ACC. Chains whose
                            // first cells are infeasible calibrate at
                            // their first trainable cell instead.
                            let cheap_run = train_cell(*cheap, None);
                            let exact_run = train_cell(SolverBackend::ExactSmo, None);
                            let fallback = match (&cheap_run, &exact_run) {
                                (Some((c, ..)), Some((e, ..))) => {
                                    e.summary.acc() - c.summary.acc() > *tolerance
                                }
                                (None, Some(_)) => true,
                                _ => false,
                            };
                            if fallback {
                                auto_fallbacks.fetch_add(1, Ordering::Relaxed);
                            }
                            let backend = if fallback { SolverBackend::ExactSmo } else { *cheap };
                            if cheap_run.is_some() || exact_run.is_some() {
                                task.auto_choice = Some(backend);
                            }
                            (backend, if fallback { exact_run } else { cheap_run })
                        }
                    },
                };
                // Approximate backends ignore `α` seeds, so only exact
                // cells that actually received one count as warm.
                let warm = seed.is_some() && backend == SolverBackend::ExactSmo;
                if let Some((cell, alpha, iterations)) = run {
                    if warm {
                        warm_cells.fetch_add(1, Ordering::Relaxed);
                        warm_iterations.fetch_add(iterations, Ordering::Relaxed);
                    } else {
                        cold_cells.fetch_add(1, Ordering::Relaxed);
                        cold_iterations.fetch_add(iterations, Ordering::Relaxed);
                    }
                    if backend == SolverBackend::ExactSmo {
                        exact_cells.fetch_add(1, Ordering::Relaxed);
                    } else {
                        approx_cells.fetch_add(1, Ordering::Relaxed);
                    }
                    task.cells.push(cell);
                    ok_cells.fetch_add(1, Ordering::Relaxed);
                    // This solution seeds the chain's next regularization.
                    task.seed = Some(alpha);
                }
                task.reg_idx += 1;
                if task.reg_idx < self.regularizations.len() {
                    Some(task)
                } else {
                    finished.lock().expect("sweep results lock")[task.chain] =
                        Some(std::mem::take(&mut task.cells));
                    None
                }
            },
        );

        // Reassemble per user, chains in `KernelKind::ALL` order, cells in
        // regularization order — the legacy cell order.
        let mut finished = finished.into_inner().expect("sweep results lock");
        let mut by_user: BTreeMap<UserId, Vec<ModelGridCell>> =
            windows.keys().map(|&user| (user, Vec::new())).collect();
        for (chain_idx, chain) in chains.iter().enumerate() {
            let cells = finished[chain_idx].take().unwrap_or_default();
            by_user
                .get_mut(&contexts[chain.ctx].user)
                .expect("chain user present in window sets")
                .extend(cells);
        }

        let stats = SweepStats {
            users: contexts.len(),
            chains: chains.len(),
            cells: ok_cells.into_inner(),
            executed: steal_stats.executed,
            steals: steal_stats.steals,
            workers: steal_stats.workers,
            warm_cells: warm_cells.into_inner(),
            cold_cells: cold_cells.into_inner(),
            warm_iterations: warm_iterations.into_inner(),
            cold_iterations: cold_iterations.into_inner(),
            exact_cells: exact_cells.into_inner(),
            approx_cells: approx_cells.into_inner(),
            auto_fallbacks: auto_fallbacks.into_inner(),
            train_nanos: train_nanos.into_inner(),
            arena: arena.stats().since(&arena_before),
        };
        (by_user, stats)
    }

    /// Scores one trained cell: decision values over the user's own windows
    /// and over the flattened probe set, reduced to `ACCself`/`ACCother`.
    /// Non-linear kernels read shared (arena-cached) rows; linear models
    /// score through their collapsed weight vector, bit-identical to
    /// per-point decisions.
    fn evaluate_cell(
        &self,
        profile: &UserProfile,
        kind: KernelKind,
        regularization: f64,
        inputs: CellInputs<'_, '_>,
    ) -> ModelGridCell {
        let shared = inputs.cross.and_then(|cross| {
            Some((
                profile.training_decision_values(inputs.gram)?,
                profile.cross_decision_values(cross)?,
            ))
        });
        let (self_values, probe_values) = match shared {
            Some(values) => values,
            None => (
                profile.batch_decision_values(inputs.own_refs),
                profile.batch_decision_values(inputs.probes),
            ),
        };
        ModelGridCell {
            kernel: kind,
            regularization,
            summary: acceptance_summary(
                inputs.own_refs.len(),
                inputs.ranges,
                &self_values,
                &probe_values,
            ),
        }
    }
}

/// Borrowed inputs of one sweep-cell evaluation.
struct CellInputs<'c, 'w> {
    gram: &'c ArenaGram<'w>,
    cross: Option<&'c ArenaCrossGram<'w>>,
    own_refs: &'c [&'w SparseVector],
    probes: &'c [&'w SparseVector],
    ranges: &'c [(usize, usize)],
}

/// `ACCself`/`ACCother` from decision values: acceptance over the user's
/// own windows, and the mean of the per-user acceptance over each other
/// user's probe range.
fn acceptance_summary(
    own_len: usize,
    ranges: &[(usize, usize)],
    self_values: &[f64],
    probe_values: &[f64],
) -> AcceptanceSummary {
    let accepted = self_values.iter().filter(|&&v| v >= 0.0).count();
    let acc_self = accepted as f64 / own_len as f64;
    let others: Vec<f64> = ranges
        .iter()
        .map(|&(start, end)| {
            if start == end {
                return 0.0;
            }
            let accepted = probe_values[start..end].iter().filter(|&&v| v >= 0.0).count();
            accepted as f64 / (end - start) as f64
        })
        .collect();
    AcceptanceSummary { acc_self, acc_other: mean(&others) }
}

#[cfg(test)]
mod tests {
    use super::*;

    use tracegen::{Scenario, TraceGenerator};

    fn small_dataset() -> Dataset {
        TraceGenerator::new(Scenario::quick_test()).generate()
    }

    #[test]
    fn window_sets_cover_users_and_respect_cap() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(50));
        assert_eq!(sets.len(), dataset.users().len());
        assert!(sets.values().all(|w| w.len() <= 50));
        assert!(sets.values().any(|w| !w.is_empty()));
    }

    #[test]
    fn window_grid_row_has_sane_summary() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let search = WindowGridSearch::new(&vocab).max_windows_per_user(Some(80));
        let row = search.evaluate(&dataset, WindowConfig::new(60, 30).unwrap());
        assert!(row.summary.acc_self > 0.5, "ACCself = {}", row.summary.acc_self);
        assert!(row.summary.acc_other < row.summary.acc_self);
        assert!((0.0..=1.0).contains(&row.summary.acc_other));
    }

    #[test]
    fn run_defaults_to_paper_candidates() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let search = WindowGridSearch::new(&vocab).max_windows_per_user(Some(40));
        let rows = search.run(&dataset, &[]);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[1].config, WindowConfig::new(60, 30).unwrap());
    }

    #[test]
    fn model_grid_search_finds_parameters() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(60));
        let user = *sets.iter().max_by_key(|&(_, w)| w.len()).map(|(u, _)| u).unwrap();
        let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::Svdd);
        let cells = search.run_user(&sets, user);
        assert!(!cells.is_empty());
        // 4 kernels × 15 values minus skipped infeasible ones.
        assert!(cells.len() <= 60);
        let best = search.best_for_user(&sets, user).unwrap();
        assert_eq!(best.kind, ModelKind::Svdd);
        assert!(best.regularization > 0.0);
        // The best ACC is at least as good as every cell.
        let best_acc = cells.iter().map(|c| c.summary.acc()).fold(f64::NEG_INFINITY, f64::max);
        let chosen = cells
            .iter()
            .find(|c| {
                Kernel::default_for(c.kernel, vocab.n_features()) == best.kernel
                    && c.regularization == best.regularization
            })
            .unwrap();
        assert!((chosen.summary.acc() - best_acc).abs() < 1e-12);
    }

    #[test]
    fn sweep_cells_without_warm_start_is_bit_identical_to_legacy_path() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(40));
        for kind in ModelKind::ALL {
            let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, kind)
                .regularizations(vec![0.9, 0.5, 0.1])
                .warm_start(false)
                .arena(ocsvm::KernelRowArena::with_budget(64 << 20));
            let (swept, stats) = search.sweep_cells(&sets);
            assert_eq!(swept.len(), sets.len());
            assert!(stats.cells > 0);
            assert_eq!(stats.warm_cells, 0, "warm start was disabled");
            let samples = search.other_window_samples(&sets);
            for (&user, cells) in &swept {
                let legacy = search.run_user_sampled(&sets, &samples, user);
                assert_eq!(cells.len(), legacy.len(), "{kind} {user}");
                for (cell, expected) in cells.iter().zip(&legacy) {
                    assert_eq!(cell.kernel, expected.kernel, "{kind} {user}");
                    assert_eq!(cell.regularization, expected.regularization);
                    // Bit-exact: identical rows, identical solver path.
                    assert_eq!(cell.summary.acc_self, expected.summary.acc_self, "{kind} {user}");
                    assert_eq!(cell.summary.acc_other, expected.summary.acc_other, "{kind} {user}");
                }
            }
        }
    }

    #[test]
    fn warm_started_sweep_selects_equally_good_parameters() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(40));
        let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::Svdd)
            .regularizations(vec![0.9, 0.7, 0.5, 0.3, 0.1])
            .warm_start(true)
            .arena(ocsvm::KernelRowArena::with_budget(64 << 20));
        let (warm_best, stats) = search.sweep_all(&sets);
        assert!(stats.warm_cells > 0, "ladder cells after the first should be seeded");
        assert!(stats.arena.hits > 0, "regularization ladder must reuse arena rows");
        assert_eq!(warm_best.len(), sets.len());
        // Warm-started solves stop at a different point inside the solver's
        // KKT tolerance band, so the selected cell may differ from the cold
        // sweep's on knife-edge ties — but judged by the *cold* sweep's own
        // scores, the warm selection must be essentially as good as the
        // cold optimum.
        let samples = search.other_window_samples(&sets);
        for (&user, params) in &warm_best {
            let legacy = search.run_user_sampled(&sets, &samples, user);
            let best_acc = legacy.iter().map(|c| c.summary.acc()).fold(f64::NEG_INFINITY, f64::max);
            let chosen = legacy
                .iter()
                .find(|c| {
                    Kernel::default_for(c.kernel, vocab.n_features()) == params.kernel
                        && c.regularization == params.regularization
                })
                .expect("warm selection is a cell of the legacy sweep");
            assert!(
                chosen.summary.acc() >= best_acc - 0.1,
                "{user}: warm pick acc {} vs cold best {best_acc}",
                chosen.summary.acc()
            );
        }
    }

    #[test]
    fn optimize_all_routes_through_the_sweep() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(30));
        let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::OcSvm)
            .regularizations(vec![0.5, 0.1])
            .arena(ocsvm::KernelRowArena::with_budget(64 << 20));
        let best = search.optimize_all(&sets);
        let (swept, _) = search.sweep_all(&sets);
        assert_eq!(best, swept);
    }

    #[test]
    fn sweep_respects_a_tiny_arena_budget() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(30));
        // A budget far below the working set: rows evict constantly, yet
        // results must match the unconstrained sweep exactly.
        let tight = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::Svdd)
            .regularizations(vec![0.5, 0.1])
            .warm_start(false)
            .arena(ocsvm::KernelRowArena::with_budget(16 << 10));
        let roomy = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::Svdd)
            .regularizations(vec![0.5, 0.1])
            .warm_start(false)
            .arena(ocsvm::KernelRowArena::with_budget(64 << 20));
        let (tight_cells, tight_stats) = tight.sweep_cells(&sets);
        let (roomy_cells, _) = roomy.sweep_cells(&sets);
        assert!(tight_stats.arena.evictions > 0, "tiny budget must evict");
        assert!(tight_stats.arena.bytes <= 16 << 10, "budget respected after the sweep");
        for (user, cells) in &tight_cells {
            let other = &roomy_cells[user];
            assert_eq!(cells.len(), other.len());
            for (a, b) in cells.iter().zip(other) {
                assert_eq!(a.summary.acc_self, b.summary.acc_self);
                assert_eq!(a.summary.acc_other, b.summary.acc_other);
            }
        }
    }

    #[test]
    fn other_window_subsamples_are_identical_across_kernels_and_entry_points() {
        // Regression: every cell of a user's sweep must see the *same*
        // `ACCother` probe subsample regardless of kernel and of whether the
        // sweep entered through `run_user`, `optimize_all` or `sweep_cells`
        // — otherwise ACCother differences between cells would reflect
        // sampling noise, not model quality.
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(50));
        let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::Svdd)
            .max_other_windows(7);
        let first = search.other_window_samples(&sets);
        let second = search.other_window_samples(&sets);
        for (user, sample) in &first {
            let again = &second[user];
            assert_eq!(sample.len(), again.len());
            for (a, b) in sample.iter().zip(again) {
                assert!(std::ptr::eq(*a, *b), "subsample must pick identical windows");
            }
            // And the subsample is the canonical deterministic one.
            let expected = subsample_evenly(sets[user].iter().collect::<Vec<_>>(), 7);
            assert_eq!(sample.len(), expected.len());
            for (a, b) in sample.iter().zip(&expected) {
                assert!(std::ptr::eq(*a, *b));
            }
        }
    }

    #[test]
    fn unknown_user_yields_no_cells() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(30));
        let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::OcSvm);
        assert!(search.run_user(&sets, UserId(999)).is_empty());
        assert!(search.best_for_user(&sets, UserId(999)).is_none());
    }
}
