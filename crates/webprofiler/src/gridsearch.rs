//! Learning-parameter optimization (Sect. IV-C).
//!
//! The paper optimizes in two stages:
//!
//! 1. [`WindowGridSearch`] (Tab. II): the window duration `D` and shift
//!    `S` are optimized *globally* over all users, with a fixed SVDD /
//!    linear / `C = 0.5` model. `ACCself` is computed on the same windows
//!    the model was trained on, `ACCother` against every other user's
//!    training windows. The paper retains `D = 60 s, S = 30 s` — not the
//!    best global `ACC`, but the best `ACCself`, which is what matters for
//!    fast identification.
//! 2. [`ModelGridSearch`] (Tab. III): the kernel and `ν`/`C` value are
//!    optimized *per user* at the retained window configuration, picking
//!    the combination with maximal `ACC = ACCself − ACCother`.

use crate::metrics::{AcceptanceSummary, ConfusionMatrix};
use crate::profile::{ModelKind, ProfileParams};
use crate::trainer::{parallel_map, subsample_evenly, ProfileTrainer};
use crate::vocab::Vocabulary;
use crate::window::WindowConfig;
use ocsvm::{CrossGram, GramMatrix, Kernel, KernelKind, SparseVector};
use proxylog::{Dataset, UserId};
use std::collections::BTreeMap;

/// Per-user window feature vectors, the shared input of both grid-search
/// stages (computing them once per window configuration dominates the cost
/// otherwise).
pub type WindowSets = BTreeMap<UserId, Vec<SparseVector>>;

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Computes user-specific window sets for every user of `dataset`, capped
/// at `max_windows_per_user` by even subsampling.
pub fn compute_window_sets(
    vocab: &Vocabulary,
    dataset: &Dataset,
    config: WindowConfig,
    max_windows_per_user: Option<usize>,
) -> WindowSets {
    let mut trainer = ProfileTrainer::new(vocab).window(config);
    if let Some(max) = max_windows_per_user {
        trainer = trainer.max_training_windows(max);
    }
    let users = dataset.users();
    let sets = parallel_map(&users, |&user| trainer.training_vectors(dataset, user));
    users.into_iter().zip(sets).collect()
}

/// One row of the Tab. II sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowGridRow {
    /// The window configuration evaluated.
    pub config: WindowConfig,
    /// Averaged acceptance over users.
    pub summary: AcceptanceSummary,
}

/// Stage 1: global window-parameter sweep (Tab. II).
#[derive(Debug, Clone)]
pub struct WindowGridSearch<'a> {
    vocab: &'a Vocabulary,
    params: ProfileParams,
    max_windows_per_user: Option<usize>,
}

impl<'a> WindowGridSearch<'a> {
    /// The `(D, S)` pairs of the paper's Tab. II, in seconds.
    pub const PAPER_CANDIDATES: [(u32, u32); 6] =
        [(60, 6), (60, 30), (300, 60), (600, 60), (1800, 300), (3600, 300)];

    /// Creates the sweep with the paper's fixed model for this stage:
    /// SVDD, linear kernel, `C = 0.5`.
    pub fn new(vocab: &'a Vocabulary) -> Self {
        Self {
            vocab,
            params: ProfileParams {
                kind: ModelKind::Svdd,
                kernel: Kernel::Linear,
                regularization: 0.5,
            },
            max_windows_per_user: Some(1_000),
        }
    }

    /// Overrides the fixed model used during the sweep.
    pub fn params(mut self, params: ProfileParams) -> Self {
        self.params = params;
        self
    }

    /// Caps the training windows per user (even subsample). `None` removes
    /// the cap.
    pub fn max_windows_per_user(mut self, max: Option<usize>) -> Self {
        self.max_windows_per_user = max;
        self
    }

    /// Evaluates one window configuration: train a model per user on its
    /// windows, score the full confusion matrix on those same windows.
    pub fn evaluate(&self, train: &Dataset, config: WindowConfig) -> WindowGridRow {
        let windows = compute_window_sets(self.vocab, train, config, self.max_windows_per_user);
        let trainer = ProfileTrainer::new(self.vocab).window(config).params(self.params);
        let users: Vec<UserId> = windows.keys().copied().collect();
        let trained =
            parallel_map(&users, |user| trainer.train_from_vectors(*user, &windows[user]).ok());
        let profiles: BTreeMap<_, _> = users
            .iter()
            .zip(trained)
            .filter_map(|(user, profile)| profile.map(|p| (*user, p)))
            .collect();
        let matrix = ConfusionMatrix::compute(&profiles, &windows);
        WindowGridRow { config, summary: matrix.summary() }
    }

    /// Runs the sweep over `configs` (defaults to the paper's candidates
    /// when empty), returning one row per configuration.
    pub fn run(&self, train: &Dataset, configs: &[WindowConfig]) -> Vec<WindowGridRow> {
        let default: Vec<WindowConfig> = Self::PAPER_CANDIDATES
            .iter()
            .map(|&(d, s)| WindowConfig::new(d, s).expect("paper candidates are valid"))
            .collect();
        let configs = if configs.is_empty() { &default } else { configs };
        configs.iter().map(|&config| self.evaluate(train, config)).collect()
    }
}

/// One cell of the Tab. III sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelGridCell {
    /// Kernel family evaluated (with vocabulary-default parameters).
    pub kernel: KernelKind,
    /// `ν` or `C` value evaluated.
    pub regularization: f64,
    /// Acceptance summary for this user's model.
    pub summary: AcceptanceSummary,
}

/// Stage 2: per-user kernel and `ν`/`C` sweep (Tab. III).
#[derive(Debug, Clone)]
pub struct ModelGridSearch<'a> {
    vocab: &'a Vocabulary,
    window: WindowConfig,
    kind: ModelKind,
    max_other_windows: usize,
    regularizations: Vec<f64>,
}

impl<'a> ModelGridSearch<'a> {
    /// The `C` (and `ν`) values of the paper's Tab. III rows.
    pub const PAPER_REGULARIZATIONS: [f64; 15] =
        [0.999, 0.99, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1, 0.05, 0.01, 0.001];

    /// A coarser grid for sweeps that optimize many users × window
    /// configurations (Tab. IV).
    pub const COARSE_REGULARIZATIONS: [f64; 8] = [0.99, 0.9, 0.7, 0.5, 0.3, 0.1, 0.05, 0.01];

    /// Creates the sweep at a window configuration (the paper fixes
    /// `D = 60 s, S = 30 s` for this stage) for one classifier family.
    pub fn new(vocab: &'a Vocabulary, window: WindowConfig, kind: ModelKind) -> Self {
        Self {
            vocab,
            window,
            kind,
            max_other_windows: 150,
            regularizations: Self::PAPER_REGULARIZATIONS.to_vec(),
        }
    }

    /// Caps the windows sampled from each *other* user when estimating
    /// `ACCother` inside the sweep (an even subsample; the estimate is a
    /// mean, so a moderate sample suffices and cuts the sweep cost by an
    /// order of magnitude). Use `usize::MAX` for the exact value.
    pub fn max_other_windows(mut self, max: usize) -> Self {
        self.max_other_windows = max;
        self
    }

    /// Replaces the `ν`/`C` grid (defaults to
    /// [`Self::PAPER_REGULARIZATIONS`]).
    pub fn regularizations(mut self, values: Vec<f64>) -> Self {
        self.regularizations = values;
        self
    }

    /// Per-user `ACCother` samples: an even subsample of every user's
    /// windows, borrowed from `windows`. Computed once and shared across
    /// all cells — and, in [`optimize_all`](Self::optimize_all), across all
    /// users — instead of cloning each user's vectors for every sweep.
    fn other_window_samples<'w>(
        &self,
        windows: &'w WindowSets,
    ) -> BTreeMap<UserId, Vec<&'w SparseVector>> {
        windows
            .iter()
            .map(|(&u, w)| (u, subsample_evenly(w.iter().collect(), self.max_other_windows)))
            .collect()
    }

    /// Evaluates every kernel × regularization combination for one user.
    ///
    /// `windows` must contain the user's own training windows as well as
    /// the other users' (used for `ACCother`). Cells whose training fails
    /// (e.g. an infeasible `C` for the window count) are skipped.
    ///
    /// The kernel matrix over the user's windows is computed exactly once
    /// per kernel (as a shared [`ocsvm::GramMatrix`]) and reused by every
    /// regularization of that kernel's sweep, so the whole sweep performs
    /// 4 Gram computations instead of 60.
    pub fn run_user(&self, windows: &WindowSets, user: UserId) -> Vec<ModelGridCell> {
        let samples = self.other_window_samples(windows);
        self.run_user_sampled(windows, &samples, user)
    }

    fn run_user_sampled<'w>(
        &self,
        windows: &'w WindowSets,
        samples: &BTreeMap<UserId, Vec<&'w SparseVector>>,
        user: UserId,
    ) -> Vec<ModelGridCell> {
        let Some(own) = windows.get(&user) else {
            return Vec::new();
        };
        let n_features = self.vocab.n_features();
        // The `ACCother` probes of every other user, flattened so one
        // `CrossGram` row covers them all; `ranges` recovers the per-user
        // slices for the per-user acceptance means.
        let mut probes: Vec<&'w SparseVector> = Vec::new();
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for (_, w) in samples.iter().filter(|&(&u, _)| u != user) {
            let start = probes.len();
            probes.extend(w.iter().copied());
            ranges.push((start, probes.len()));
        }
        // One Gram matrix (and, for non-linear kernels, one cross matrix
        // against the probes) per kernel over this user's training windows.
        // Rows materialize lazily, each at most once, shared read-only by
        // every regularization of the sweep — training *and* scoring. The
        // linear kernel needs neither for scoring: its models collapse to a
        // single weight vector, scored below as one dense GEMV per batch.
        let own_refs: Vec<&'w SparseVector> = own.iter().collect();
        let kernels: Vec<(KernelKind, Kernel, GramMatrix<'w>, Option<CrossGram<'w>>)> =
            KernelKind::ALL
                .iter()
                .map(|&kind| {
                    let kernel = Kernel::default_for(kind, n_features);
                    let cross = (kernel != Kernel::Linear)
                        .then(|| CrossGram::new(kernel, own, probes.clone()));
                    (kind, kernel, GramMatrix::compute(kernel, own), cross)
                })
                .collect();
        let combos: Vec<(usize, f64)> = (0..kernels.len())
            .flat_map(|k| self.regularizations.iter().map(move |&c| (k, c)))
            .collect();
        let results = parallel_map(&combos, |&(k, regularization)| {
            let (kernel_kind, kernel, ref gram, ref cross) = kernels[k];
            let trainer = ProfileTrainer::new(self.vocab)
                .window(self.window)
                .kind(self.kind)
                .kernel(kernel)
                .regularization(regularization);
            let profile = trainer.train_from_vectors_with_gram(user, own, gram).ok()?;
            let shared = cross.as_ref().and_then(|cross| {
                Some((
                    profile.training_decision_values(gram)?,
                    profile.cross_decision_values(cross)?,
                ))
            });
            // Linear models have no CrossGram: their collapsed weight
            // vector scores each batch as one dense GEMV, bit-identical
            // to per-point decisions.
            let (self_values, probe_values) = match shared {
                Some(values) => values,
                None => (
                    profile.batch_decision_values(&own_refs),
                    profile.batch_decision_values(&probes),
                ),
            };
            let accepted = self_values.iter().filter(|&&v| v >= 0.0).count();
            let acc_self = accepted as f64 / own.len() as f64;
            let others: Vec<f64> = ranges
                .iter()
                .map(|&(start, end)| {
                    if start == end {
                        return 0.0;
                    }
                    let accepted = probe_values[start..end].iter().filter(|&&v| v >= 0.0).count();
                    accepted as f64 / (end - start) as f64
                })
                .collect();
            let acc_other = mean(&others);
            Some(ModelGridCell {
                kernel: kernel_kind,
                regularization,
                summary: AcceptanceSummary { acc_self, acc_other },
            })
        });
        results.into_iter().flatten().collect()
    }

    /// The best parameters for one user (maximal `ACC`), or `None` when no
    /// cell trained successfully.
    pub fn best_for_user(&self, windows: &WindowSets, user: UserId) -> Option<ProfileParams> {
        self.pick_best(self.run_user(windows, user))
    }

    fn pick_best(&self, cells: Vec<ModelGridCell>) -> Option<ProfileParams> {
        let best = cells
            .into_iter()
            .max_by(|a, b| a.summary.acc().partial_cmp(&b.summary.acc()).expect("ACC is finite"))?;
        Some(ProfileParams {
            kind: self.kind,
            kernel: Kernel::default_for(best.kernel, self.vocab.n_features()),
            regularization: best.regularization,
        })
    }

    /// Optimizes every user in the window sets, in parallel.
    ///
    /// The `ACCother` window samples are drawn once and shared by reference
    /// across all users' sweeps. Memory scales with the per-user Gram
    /// matrices held by in-flight sweeps (`O(l²)` each), so cap the window
    /// sets (see [`compute_window_sets`]) on large datasets.
    pub fn optimize_all(&self, windows: &WindowSets) -> BTreeMap<UserId, ProfileParams> {
        let samples = self.other_window_samples(windows);
        let users: Vec<UserId> = windows.keys().copied().collect();
        let results = parallel_map(&users, |&user| {
            self.pick_best(self.run_user_sampled(windows, &samples, user))
        });
        users
            .into_iter()
            .zip(results)
            .filter_map(|(user, params)| params.map(|p| (user, p)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use tracegen::{Scenario, TraceGenerator};

    fn small_dataset() -> Dataset {
        TraceGenerator::new(Scenario::quick_test()).generate()
    }

    #[test]
    fn window_sets_cover_users_and_respect_cap() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(50));
        assert_eq!(sets.len(), dataset.users().len());
        assert!(sets.values().all(|w| w.len() <= 50));
        assert!(sets.values().any(|w| !w.is_empty()));
    }

    #[test]
    fn window_grid_row_has_sane_summary() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let search = WindowGridSearch::new(&vocab).max_windows_per_user(Some(80));
        let row = search.evaluate(&dataset, WindowConfig::new(60, 30).unwrap());
        assert!(row.summary.acc_self > 0.5, "ACCself = {}", row.summary.acc_self);
        assert!(row.summary.acc_other < row.summary.acc_self);
        assert!((0.0..=1.0).contains(&row.summary.acc_other));
    }

    #[test]
    fn run_defaults_to_paper_candidates() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let search = WindowGridSearch::new(&vocab).max_windows_per_user(Some(40));
        let rows = search.run(&dataset, &[]);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[1].config, WindowConfig::new(60, 30).unwrap());
    }

    #[test]
    fn model_grid_search_finds_parameters() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(60));
        let user = *sets.iter().max_by_key(|&(_, w)| w.len()).map(|(u, _)| u).unwrap();
        let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::Svdd);
        let cells = search.run_user(&sets, user);
        assert!(!cells.is_empty());
        // 4 kernels × 15 values minus skipped infeasible ones.
        assert!(cells.len() <= 60);
        let best = search.best_for_user(&sets, user).unwrap();
        assert_eq!(best.kind, ModelKind::Svdd);
        assert!(best.regularization > 0.0);
        // The best ACC is at least as good as every cell.
        let best_acc = cells.iter().map(|c| c.summary.acc()).fold(f64::NEG_INFINITY, f64::max);
        let chosen = cells
            .iter()
            .find(|c| {
                Kernel::default_for(c.kernel, vocab.n_features()) == best.kernel
                    && c.regularization == best.regularization
            })
            .unwrap();
        assert!((chosen.summary.acc() - best_acc).abs() < 1e-12);
    }

    #[test]
    fn unknown_user_yields_no_cells() {
        let dataset = small_dataset();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        let sets = compute_window_sets(&vocab, &dataset, WindowConfig::PAPER_DEFAULT, Some(30));
        let search = ModelGridSearch::new(&vocab, WindowConfig::PAPER_DEFAULT, ModelKind::OcSvm);
        assert!(search.run_user(&sets, UserId(999)).is_empty());
        assert!(search.best_for_user(&sets, UserId(999)).is_none());
    }
}
