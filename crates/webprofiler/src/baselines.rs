//! Baseline one-class models.
//!
//! The paper's future work proposes trying simpler probabilistic models
//! against the SVM family. [`FrequencyProfile`] is that baseline: it
//! models a user by the *mean window vector* of their training windows and
//! accepts a window if its cosine similarity to the mean exceeds a
//! threshold calibrated on the training set (the `ν`-style quantile). It
//! needs no solver, trains in one pass, and gives the comparison point the
//! `baseline_comparison` experiment reports.

use crate::trainer::ProfileError;
use ocsvm::{SparseVector, SparseVectorBuilder};
use proxylog::UserId;
use std::fmt;

/// Mean-vector one-class baseline with a cosine-similarity threshold.
///
/// # Examples
///
/// ```
/// use ocsvm::SparseVector;
/// use proxylog::UserId;
/// use webprofiler::FrequencyProfile;
///
/// let windows: Vec<SparseVector> =
///     (0..20).map(|i| SparseVector::from_dense(&[1.0, 0.1 * (i % 3) as f64])).collect();
/// let baseline = FrequencyProfile::train(UserId(1), &windows, 0.1)?;
/// assert!(baseline.accepts(&SparseVector::from_dense(&[1.0, 0.1])));
/// assert!(!baseline.accepts(&SparseVector::from_dense(&[0.0, 9.0])));
/// # Ok::<(), webprofiler::ProfileError>(())
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrequencyProfile {
    user: UserId,
    mean: SparseVector,
    mean_norm: f64,
    threshold: f64,
    training_windows: usize,
}

impl FrequencyProfile {
    /// Trains the baseline: computes the mean window vector and sets the
    /// similarity threshold at the `quantile` fraction of training
    /// windows' own similarities (so roughly `quantile` of training
    /// windows would be rejected — the analogue of `ν`).
    ///
    /// # Errors
    ///
    /// [`ProfileError::NoWindows`] when `windows` is empty.
    pub fn train(
        user: UserId,
        windows: &[SparseVector],
        quantile: f64,
    ) -> Result<Self, ProfileError> {
        if windows.is_empty() {
            return Err(ProfileError::NoWindows { user });
        }
        let quantile = quantile.clamp(0.0, 1.0);
        let scale = 1.0 / windows.len() as f64;
        let mut builder = SparseVectorBuilder::new();
        for window in windows {
            for (column, value) in window.iter() {
                builder.add(column, value * scale);
            }
        }
        let mean = builder.build_summed();
        let mean_norm = mean.squared_norm().sqrt();
        let mut similarities: Vec<f64> =
            windows.iter().map(|w| cosine(&mean, mean_norm, w)).collect();
        similarities.sort_by(|a, b| a.partial_cmp(b).expect("finite similarity"));
        let index =
            ((windows.len() as f64 * quantile) as usize).min(windows.len().saturating_sub(1));
        let threshold = similarities[index];
        Ok(Self { user, mean, mean_norm, threshold, training_windows: windows.len() })
    }

    /// The profiled user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// The calibrated similarity threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of training windows.
    pub fn training_windows(&self) -> usize {
        self.training_windows
    }

    /// Signed decision value: cosine similarity minus the threshold.
    pub fn decision_value(&self, window: &SparseVector) -> f64 {
        cosine(&self.mean, self.mean_norm, window) - self.threshold
    }

    /// Whether the window is accepted as the profiled user's behavior.
    pub fn accepts(&self, window: &SparseVector) -> bool {
        self.decision_value(window) >= 0.0
    }
}

impl fmt::Display for FrequencyProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "frequency-baseline({}, threshold {:.3}, {} windows)",
            self.user, self.threshold, self.training_windows
        )
    }
}

fn cosine(mean: &SparseVector, mean_norm: f64, window: &SparseVector) -> f64 {
    let window_norm = window.squared_norm().sqrt();
    if mean_norm == 0.0 || window_norm == 0.0 {
        return 0.0;
    }
    mean.dot(window) / (mean_norm * window_norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows(base: u32, n: usize) -> Vec<SparseVector> {
        (0..n)
            .map(|i| {
                SparseVector::from_pairs(vec![
                    (0, 1.0),
                    (base + (i % 3) as u32, 1.0),
                    (700, 0.2 + 0.1 * (i % 4) as f64),
                ])
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn rejects_empty_training() {
        let err = FrequencyProfile::train(UserId(0), &[], 0.1).unwrap_err();
        assert!(matches!(err, ProfileError::NoWindows { .. }));
    }

    #[test]
    fn accepts_own_rejects_distant() {
        let own = windows(10, 30);
        let baseline = FrequencyProfile::train(UserId(1), &own, 0.1).unwrap();
        let accepted = own.iter().filter(|w| baseline.accepts(w)).count();
        assert!(accepted as f64 >= 0.85 * own.len() as f64, "accepted {accepted}");
        let strangers = windows(500, 30);
        let false_accepts = strangers.iter().filter(|w| baseline.accepts(w)).count();
        assert!(
            false_accepts < accepted,
            "baseline has no separation: {false_accepts} vs {accepted}"
        );
    }

    #[test]
    fn quantile_controls_strictness() {
        let own = windows(10, 40);
        let loose = FrequencyProfile::train(UserId(1), &own, 0.0).unwrap();
        let strict = FrequencyProfile::train(UserId(1), &own, 0.5).unwrap();
        assert!(strict.threshold() >= loose.threshold());
        let accepted_loose = own.iter().filter(|w| loose.accepts(w)).count();
        let accepted_strict = own.iter().filter(|w| strict.accepts(w)).count();
        assert!(accepted_strict <= accepted_loose);
    }

    #[test]
    fn empty_window_is_rejected_by_nonzero_profile() {
        let own = windows(10, 10);
        let baseline = FrequencyProfile::train(UserId(1), &own, 0.1).unwrap();
        assert!(!baseline.accepts(&SparseVector::new()));
    }

    #[test]
    fn display_mentions_user() {
        let baseline = FrequencyProfile::train(UserId(4), &windows(10, 5), 0.2).unwrap();
        assert!(baseline.to_string().contains("user_4"));
    }
}
