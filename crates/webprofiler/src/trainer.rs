//! Training user profiles from datasets.

use crate::profile::{ModelKind, ProfileModel, ProfileParams, UserProfile};
use crate::vocab::Vocabulary;
use crate::window::{WindowAggregator, WindowConfig};
use ocsvm::{GramMatrix, Kernel, NuOcSvm, SolverOptions, SparseVector, Svdd, TrainError};
use proxylog::{Dataset, UserId};
use std::collections::BTreeMap;
use std::fmt;

/// Error training a user profile.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The user has no transactions (and therefore no windows) in the
    /// dataset.
    NoWindows {
        /// The affected user.
        user: UserId,
    },
    /// The underlying solver rejected the training set or parameters.
    Train(TrainError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::NoWindows { user } => {
                write!(f, "no transaction windows for {user}")
            }
            ProfileError::Train(e) => write!(f, "training failed: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Train(e) => Some(e),
            ProfileError::NoWindows { .. } => None,
        }
    }
}

impl From<TrainError> for ProfileError {
    fn from(e: TrainError) -> Self {
        ProfileError::Train(e)
    }
}

/// Builder-style trainer producing [`UserProfile`]s.
///
/// Defaults follow the paper's retained window configuration (60 s / 30 s)
/// with the stage-1 model of its grid search: SVDD, linear kernel,
/// `C = 0.5` — a strong out-of-the-box choice on window features. The
/// paper ultimately optimizes the family, kernel and `ν`/`C` per user
/// through [`ModelGridSearch`](crate::ModelGridSearch).
///
/// # Examples
///
/// ```
/// use proxylog::UserId;
/// use tracegen::{Scenario, TraceGenerator};
/// use webprofiler::{ProfileTrainer, Vocabulary};
///
/// let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
/// let vocab = Vocabulary::new(dataset.taxonomy().clone());
/// let user = dataset.users()[0];
/// let profile = ProfileTrainer::new(&vocab).train(&dataset, user)?;
/// assert_eq!(profile.user(), user);
/// # Ok::<(), webprofiler::ProfileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProfileTrainer<'a> {
    vocab: &'a Vocabulary,
    window: WindowConfig,
    params: ProfileParams,
    max_training_windows: Option<usize>,
    solver: SolverOptions,
}

impl<'a> ProfileTrainer<'a> {
    /// Creates a trainer with paper-default windowing and an SVDD /
    /// linear / `C = 0.5` model.
    pub fn new(vocab: &'a Vocabulary) -> Self {
        Self {
            vocab,
            window: WindowConfig::PAPER_DEFAULT,
            params: ProfileParams {
                kind: ModelKind::Svdd,
                kernel: Kernel::Linear,
                regularization: 0.5,
            },
            max_training_windows: None,
            solver: SolverOptions::default(),
        }
    }

    /// Sets the window configuration.
    pub fn window(mut self, window: WindowConfig) -> Self {
        self.window = window;
        self
    }

    /// Sets all hyper-parameters at once.
    pub fn params(mut self, params: ProfileParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the classifier family.
    pub fn kind(mut self, kind: ModelKind) -> Self {
        self.params.kind = kind;
        self
    }

    /// Sets the kernel.
    pub fn kernel(mut self, kernel: Kernel) -> Self {
        self.params.kernel = kernel;
        self
    }

    /// Sets `ν` (OC-SVM) or `C` (SVDD).
    pub fn regularization(mut self, value: f64) -> Self {
        self.params.regularization = value;
        self
    }

    /// Caps the number of training windows; when a user has more, an
    /// evenly spaced subsample is used. Training cost grows quadratically
    /// with window count, so large datasets benefit from a cap in the low
    /// thousands (accuracy saturates well before that).
    pub fn max_training_windows(mut self, max: usize) -> Self {
        self.max_training_windows = Some(max);
        self
    }

    /// Overrides the SMO solver options.
    pub fn solver_options(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the solver backend, keeping the other solver options —
    /// shorthand for [`solver_options`](Self::solver_options) with only
    /// [`ocsvm::SolverOptions::backend`] changed.
    pub fn solver_backend(mut self, backend: ocsvm::SolverBackend) -> Self {
        self.solver.backend = backend;
        self
    }

    /// The configured window configuration.
    pub fn window_config(&self) -> WindowConfig {
        self.window
    }

    /// The hyper-parameters this trainer trains with (the partial-retrain
    /// path needs the kernel to precompute a shared Gram matrix).
    pub fn profile_params(&self) -> ProfileParams {
        self.params
    }

    /// Computes the user-specific training windows this trainer would use
    /// (after subsampling), exposing the intermediate result so grid
    /// searches can reuse it across parameter combinations.
    pub fn training_vectors(&self, dataset: &Dataset, user: UserId) -> Vec<SparseVector> {
        let aggregator = WindowAggregator::new(self.vocab, self.window);
        let windows = aggregator.user_windows(dataset, user);
        let mut vectors: Vec<SparseVector> = windows.into_iter().map(|w| w.features).collect();
        if let Some(max) = self.max_training_windows {
            vectors = subsample_evenly(vectors, max);
        }
        vectors
    }

    /// Trains a profile for `user` from `dataset`.
    ///
    /// # Errors
    ///
    /// * [`ProfileError::NoWindows`] when the user has no transactions.
    /// * [`ProfileError::Train`] when the solver rejects the parameters.
    pub fn train(&self, dataset: &Dataset, user: UserId) -> Result<UserProfile, ProfileError> {
        let vectors = self.training_vectors(dataset, user);
        self.train_from_vectors(user, &vectors)
    }

    /// Trains a profile from precomputed window feature vectors.
    ///
    /// # Errors
    ///
    /// Same as [`ProfileTrainer::train`]; `NoWindows` when `vectors` is
    /// empty.
    pub fn train_from_vectors(
        &self,
        user: UserId,
        vectors: &[SparseVector],
    ) -> Result<UserProfile, ProfileError> {
        if vectors.is_empty() {
            return Err(ProfileError::NoWindows { user });
        }
        let model = match self.params.kind {
            ModelKind::OcSvm => ProfileModel::OcSvm(
                NuOcSvm::new(self.params.regularization, self.params.kernel)
                    .with_options(self.solver)
                    .train(vectors)?,
            ),
            ModelKind::Svdd => ProfileModel::Svdd(
                Svdd::new(self.params.regularization, self.params.kernel)
                    .with_options(self.solver)
                    .train(vectors)?,
            ),
        };
        Ok(UserProfile {
            user,
            params: self.params,
            window: self.window,
            model,
            training_windows: vectors.len(),
        })
    }

    /// Trains a profile from precomputed window vectors and a precomputed
    /// Gram matrix over exactly those vectors.
    ///
    /// Numerically identical to
    /// [`train_from_vectors`](Self::train_from_vectors) but skips the
    /// kernel-matrix computation, which dominates when the same vectors are
    /// trained repeatedly with different regularizations — the
    /// [`ModelGridSearch`](crate::ModelGridSearch) computes one `GramMatrix`
    /// per (user, kernel) and shares it across the whole sweep. The
    /// trainer's configured kernel must match `gram`'s.
    ///
    /// # Errors
    ///
    /// Same as [`train_from_vectors`](Self::train_from_vectors), plus the
    /// solver's Gram-compatibility errors
    /// ([`TrainError::GramSizeMismatch`], [`TrainError::GramKernelMismatch`])
    /// wrapped in [`ProfileError::Train`].
    pub fn train_from_vectors_with_gram(
        &self,
        user: UserId,
        vectors: &[SparseVector],
        gram: &GramMatrix<'_>,
    ) -> Result<UserProfile, ProfileError> {
        self.train_from_vectors_with_rows(user, vectors, gram)
    }

    /// Trains a profile from precomputed window vectors and any shared
    /// kernel-row source — a [`GramMatrix`] or an arena-backed
    /// [`ocsvm::ArenaGram`] whose rows are cached process-wide under a
    /// memory budget. Numerically identical to
    /// [`train_from_vectors_with_gram`](Self::train_from_vectors_with_gram).
    ///
    /// # Errors
    ///
    /// Same as [`train_from_vectors_with_gram`](Self::train_from_vectors_with_gram).
    pub fn train_from_vectors_with_rows<G: ocsvm::KernelRows>(
        &self,
        user: UserId,
        vectors: &[SparseVector],
        rows: &G,
    ) -> Result<UserProfile, ProfileError> {
        Ok(self.train_from_vectors_seeded(user, vectors, rows, None)?.0)
    }

    /// Like [`train_from_vectors_with_rows`](Self::train_from_vectors_with_rows),
    /// but optionally warm-starts the solver from the `α` vector of an
    /// adjacent regularization's solution, and returns this solution's full
    /// `α` so the caller can seed the next value of its ladder. Seeding
    /// changes the iteration count, not the optimum (the problem is convex).
    ///
    /// # Errors
    ///
    /// Same as [`train_from_vectors_with_gram`](Self::train_from_vectors_with_gram).
    pub fn train_from_vectors_seeded<G: ocsvm::KernelRows>(
        &self,
        user: UserId,
        vectors: &[SparseVector],
        rows: &G,
        seed: Option<&[f64]>,
    ) -> Result<(UserProfile, Vec<f64>), ProfileError> {
        if vectors.is_empty() {
            return Err(ProfileError::NoWindows { user });
        }
        let (model, alpha) = match self.params.kind {
            ModelKind::OcSvm => {
                let (m, alpha) = NuOcSvm::new(self.params.regularization, self.params.kernel)
                    .with_options(self.solver)
                    .train_with_rows_seeded(vectors, rows, seed)?;
                (ProfileModel::OcSvm(m), alpha)
            }
            ModelKind::Svdd => {
                let (m, alpha) = Svdd::new(self.params.regularization, self.params.kernel)
                    .with_options(self.solver)
                    .train_with_rows_seeded(vectors, rows, seed)?;
                (ProfileModel::Svdd(m), alpha)
            }
        };
        let profile = UserProfile {
            user,
            params: self.params,
            window: self.window,
            model,
            training_windows: vectors.len(),
        };
        Ok((profile, alpha))
    }

    /// Computes [`training_vectors`](Self::training_vectors) for many
    /// users at once, fanning the window extraction and aggregation out
    /// across the thread pool. Results are returned in `users` order and
    /// are bit-identical to calling
    /// [`training_vectors`](Self::training_vectors) serially per user
    /// (each user's windows are extracted independently, so execution
    /// order cannot leak into the features).
    pub fn training_vectors_all(
        &self,
        dataset: &Dataset,
        users: &[UserId],
    ) -> Vec<Vec<SparseVector>> {
        parallel_map(users, |&user| self.training_vectors(dataset, user))
    }

    /// Trains profiles for every user in the dataset, in parallel.
    ///
    /// Feature extraction fans out per user first (so the window
    /// aggregation of heavy users overlaps), then the per-user solvers run
    /// in parallel. Users whose training fails are reported in the error
    /// map alongside the successful profiles, so one pathological user
    /// cannot sink a 25-user experiment.
    pub fn train_all(
        &self,
        dataset: &Dataset,
    ) -> (BTreeMap<UserId, UserProfile>, BTreeMap<UserId, ProfileError>) {
        let users = dataset.users();
        let vector_sets = self.training_vectors_all(dataset, &users);
        let jobs: Vec<(UserId, Vec<SparseVector>)> =
            users.iter().copied().zip(vector_sets).collect();
        let results = parallel_map(&jobs, |(user, vectors)| {
            if vectors.is_empty() {
                // `training_vectors` is empty only for users absent from the
                // dataset; `dataset.users()` never yields those, but keep the
                // serial path's error shape for robustness.
                Err(ProfileError::NoWindows { user: *user })
            } else {
                self.train_from_vectors(*user, vectors)
            }
        });
        let mut profiles = BTreeMap::new();
        let mut errors = BTreeMap::new();
        for (user, result) in users.iter().zip(results) {
            match result {
                Ok(profile) => {
                    profiles.insert(*user, profile);
                }
                Err(e) => {
                    errors.insert(*user, e);
                }
            }
        }
        (profiles, errors)
    }
}

/// Keeps at most `max` elements, evenly spaced over the input order (which
/// is chronological for windows), always retaining the first element.
pub(crate) fn subsample_evenly<T>(items: Vec<T>, max: usize) -> Vec<T> {
    if items.len() <= max || max == 0 {
        return items;
    }
    let stride = items.len() as f64 / max as f64;
    let mut picked = Vec::with_capacity(max);
    let mut next = 0.0f64;
    for (i, item) in items.into_iter().enumerate() {
        if i as f64 >= next && picked.len() < max {
            picked.push(item);
            next += stride;
        }
    }
    picked
}

/// Maps `f` over `items` using scoped threads; result order matches input
/// order.
///
/// The crate's shared fan-out helper (profile training, identification,
/// and the streaming engine's per-profile batch scoring all go through
/// it). Since the pool's extraction into its own crate this is a thin
/// wrapper over [`parcore::parallel_map`], kept as a re-export so existing
/// callers compile unchanged: items are split into one contiguous chunk
/// per available core, so the overhead is a handful of thread spawns per
/// call, nothing per item. Falls back to a plain sequential map for
/// single-item inputs or single-core machines.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parcore::parallel_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    use tracegen::{Scenario, TraceGenerator};

    fn setup() -> (Dataset, Vocabulary) {
        let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
        let vocab = Vocabulary::new(dataset.taxonomy().clone());
        (dataset, vocab)
    }

    #[test]
    fn trains_a_profile_for_an_active_user() {
        let (dataset, vocab) = setup();
        let user =
            *dataset.user_counts().iter().max_by_key(|&(_, &count)| count).map(|(u, _)| u).unwrap();
        let profile =
            ProfileTrainer::new(&vocab).max_training_windows(400).train(&dataset, user).unwrap();
        assert_eq!(profile.user(), user);
        assert!(profile.training_windows() > 0);
        assert!(profile.support_vector_count() > 0);
    }

    #[test]
    fn unknown_user_yields_no_windows() {
        let (dataset, vocab) = setup();
        let err = ProfileTrainer::new(&vocab).train(&dataset, UserId(999)).unwrap_err();
        assert_eq!(err, ProfileError::NoWindows { user: UserId(999) });
    }

    #[test]
    fn invalid_regularization_propagates_solver_error() {
        let (dataset, vocab) = setup();
        let user = dataset.users()[0];
        let err = ProfileTrainer::new(&vocab)
            .kind(ModelKind::OcSvm)
            .regularization(2.0) // nu > 1 is invalid for OC-SVM
            .max_training_windows(50)
            .train(&dataset, user)
            .unwrap_err();
        assert!(matches!(err, ProfileError::Train(TrainError::InvalidNu { .. })));
    }

    #[test]
    fn svdd_and_ocsvm_both_train() {
        let (dataset, vocab) = setup();
        let user =
            *dataset.user_counts().iter().max_by_key(|&(_, &count)| count).map(|(u, _)| u).unwrap();
        for kind in ModelKind::ALL {
            let profile = ProfileTrainer::new(&vocab)
                .kind(kind)
                .regularization(0.5)
                .max_training_windows(200)
                .train(&dataset, user)
                .unwrap();
            assert_eq!(profile.params().kind, kind);
        }
    }

    #[test]
    fn profile_accepts_own_training_windows_mostly() {
        let (dataset, vocab) = setup();
        let user =
            *dataset.user_counts().iter().max_by_key(|&(_, &count)| count).map(|(u, _)| u).unwrap();
        let trainer = ProfileTrainer::new(&vocab).regularization(0.1).max_training_windows(300);
        let vectors = trainer.training_vectors(&dataset, user);
        let profile = trainer.train_from_vectors(user, &vectors).unwrap();
        let accepted = vectors.iter().filter(|v| profile.accepts(v)).count();
        assert!(
            accepted as f64 >= 0.8 * vectors.len() as f64,
            "accepted {accepted}/{}",
            vectors.len()
        );
    }

    #[test]
    fn train_all_covers_all_users() {
        let (dataset, vocab) = setup();
        let (profiles, errors) =
            ProfileTrainer::new(&vocab).max_training_windows(150).train_all(&dataset);
        assert_eq!(profiles.len() + errors.len(), dataset.users().len());
        assert!(!profiles.is_empty());
        for (user, profile) in &profiles {
            assert_eq!(profile.user(), *user);
        }
    }

    #[test]
    fn subsample_keeps_order_and_bounds() {
        let items: Vec<u32> = (0..100).collect();
        let sampled = subsample_evenly(items.clone(), 10);
        assert_eq!(sampled.len(), 10);
        assert_eq!(sampled[0], 0);
        assert!(sampled.windows(2).all(|w| w[0] < w[1]));
        // No-op when under the cap.
        assert_eq!(subsample_evenly(items.clone(), 1000), items);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn training_vectors_respect_cap() {
        let (dataset, vocab) = setup();
        let user =
            *dataset.user_counts().iter().max_by_key(|&(_, &count)| count).map(|(u, _)| u).unwrap();
        let trainer = ProfileTrainer::new(&vocab).max_training_windows(37);
        assert!(trainer.training_vectors(&dataset, user).len() <= 37);
    }
}
