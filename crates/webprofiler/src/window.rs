//! Sliding transaction windows (Sect. III-C).
//!
//! Transactions are aggregated into windows of duration `D` seconds moving
//! by a shift of `S ≤ D` seconds; all transactions of one *key* (a user for
//! training and accuracy evaluation, a device/host for identification)
//! inside a window are composed into one feature vector. Only windows
//! containing at least one transaction are emitted.
//!
//! The paper retains `D = 60 s`, `S = 30 s` after its grid search
//! ([`WindowConfig::PAPER_DEFAULT`]), giving a new feature vector every 30
//! seconds with 30 seconds of overlap between consecutive windows.

use crate::features::aggregate_window;
use crate::vocab::Vocabulary;
use ocsvm::SparseVector;
use proxylog::{Dataset, DeviceId, Timestamp, Transaction, UserId};
use std::fmt;

/// Window duration `D` and shift `S`, in seconds.
///
/// # Examples
///
/// ```
/// use webprofiler::WindowConfig;
///
/// let config = WindowConfig::new(60, 30)?;
/// assert_eq!(config.to_string(), "D=60s/S=30s");
/// # Ok::<(), webprofiler::InvalidWindowConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WindowConfig {
    duration_secs: u32,
    shift_secs: u32,
}

/// Error constructing a [`WindowConfig`]: `D` and `S` must be positive with
/// `S ≤ D`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidWindowConfigError {
    duration_secs: u32,
    shift_secs: u32,
}

impl fmt::Display for InvalidWindowConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid window config: duration {}s, shift {}s (need 0 < S <= D)",
            self.duration_secs, self.shift_secs
        )
    }
}

impl std::error::Error for InvalidWindowConfigError {}

impl WindowConfig {
    /// The configuration the paper retains: `D = 60 s`, `S = 30 s`.
    pub const PAPER_DEFAULT: WindowConfig = WindowConfig { duration_secs: 60, shift_secs: 30 };

    /// Creates a config with duration `D` and shift `S` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWindowConfigError`] unless `0 < S ≤ D`.
    pub fn new(duration_secs: u32, shift_secs: u32) -> Result<Self, InvalidWindowConfigError> {
        if duration_secs == 0 || shift_secs == 0 || shift_secs > duration_secs {
            return Err(InvalidWindowConfigError { duration_secs, shift_secs });
        }
        Ok(Self { duration_secs, shift_secs })
    }

    /// Window duration `D` in seconds.
    pub fn duration_secs(&self) -> u32 {
        self.duration_secs
    }

    /// Window shift `S` in seconds.
    pub fn shift_secs(&self) -> u32 {
        self.shift_secs
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

impl fmt::Display for WindowConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D={}s/S={}s", self.duration_secs, self.shift_secs)
    }
}

/// What a window's transactions were grouped by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WindowKey {
    /// User-specific windowing (training, accuracy evaluation).
    User(UserId),
    /// Host-specific windowing (identification on a device).
    Device(DeviceId),
}

/// One aggregated transaction window.
#[derive(Debug, Clone)]
pub struct TransactionWindow {
    /// Grouping key.
    pub key: WindowKey,
    /// Window start time (grid-aligned to the shift).
    pub start: Timestamp,
    /// Aggregated feature vector.
    pub features: SparseVector,
    /// Number of transactions aggregated.
    pub transaction_count: usize,
    /// Distinct users whose transactions fall in the window (ascending).
    /// For user-specific windowing this is always the single profiled
    /// user; for host-specific windowing it is the ground truth the
    /// identification experiment compares against.
    pub users: Vec<UserId>,
}

/// Computes sliding windows over datasets with a fixed vocabulary and
/// window configuration.
#[derive(Debug, Clone)]
pub struct WindowAggregator<'a> {
    vocab: &'a Vocabulary,
    config: WindowConfig,
}

impl<'a> WindowAggregator<'a> {
    /// Creates an aggregator.
    pub fn new(vocab: &'a Vocabulary, config: WindowConfig) -> Self {
        Self { vocab, config }
    }

    /// The window configuration in use.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// User-specific windows over a dataset (only that user's
    /// transactions), time-ordered.
    pub fn user_windows(&self, dataset: &Dataset, user: UserId) -> Vec<TransactionWindow> {
        let txs: Vec<Transaction> = dataset.for_user(user).copied().collect();
        self.windows_over(&txs, WindowKey::User(user))
    }

    /// Host-specific windows over a dataset (all transactions seen on the
    /// device, whoever performed them), time-ordered.
    pub fn device_windows(&self, dataset: &Dataset, device: DeviceId) -> Vec<TransactionWindow> {
        let txs: Vec<Transaction> = dataset.for_device(device).copied().collect();
        self.windows_over(&txs, WindowKey::Device(device))
    }

    /// Windows over an explicit time-sorted transaction slice.
    ///
    /// The window grid is aligned to the epoch (window `k` covers
    /// `[k·S, k·S + D)`), so window boundaries are stable across datasets
    /// and keys. Empty windows are skipped.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `transactions` is not sorted by timestamp.
    pub fn windows_over(
        &self,
        transactions: &[Transaction],
        key: WindowKey,
    ) -> Vec<TransactionWindow> {
        let mut result = Vec::new();
        for_each_window(transactions, self.config, |window_start, slice| {
            let mut users: Vec<UserId> = slice.iter().map(|tx| tx.user).collect();
            users.sort_unstable();
            users.dedup();
            result.push(TransactionWindow {
                key,
                start: window_start,
                features: aggregate_window(self.vocab, slice),
                transaction_count: slice.len(),
                users,
            });
        });
        result
    }

    /// The raw transaction slices behind each non-empty window — the input
    /// to sequence-based models (e.g. the Markov baseline) that need more
    /// than the aggregated feature vector.
    pub fn user_window_slices(
        &self,
        dataset: &Dataset,
        user: UserId,
    ) -> Vec<(Timestamp, Vec<Transaction>)> {
        let txs: Vec<Transaction> = dataset.for_user(user).copied().collect();
        let mut result = Vec::new();
        for_each_window(&txs, self.config, |start, slice| {
            result.push((start, slice.to_vec()));
        });
        result
    }
}

/// Shared sliding-window sweep: invokes `emit(start, slice)` for every
/// non-empty window of the grid, skipping empty gaps in `O(windows + n)`.
///
/// # Panics
///
/// Debug-asserts that `transactions` is time-sorted.
fn for_each_window(
    transactions: &[Transaction],
    config: WindowConfig,
    mut emit: impl FnMut(Timestamp, &[Transaction]),
) {
    debug_assert!(
        transactions.windows(2).all(|w| w[0].timestamp <= w[1].timestamp),
        "transactions must be time-sorted"
    );
    if transactions.is_empty() {
        return;
    }
    let s = i64::from(config.shift_secs);
    let d = i64::from(config.duration_secs);
    let first_t = transactions[0].timestamp.as_secs();
    let last_t = transactions[transactions.len() - 1].timestamp.as_secs();
    // Smallest k with k·S + D > first_t, largest k with k·S <= last_t.
    let mut k = (first_t - d).div_euclid(s) + 1;
    let last_k = last_t.div_euclid(s);
    let mut lo = 0usize;
    while k <= last_k {
        let window_start = k * s;
        let window_end = window_start + d;
        while lo < transactions.len() && transactions[lo].timestamp.as_secs() < window_start {
            lo += 1;
        }
        if lo >= transactions.len() {
            break;
        }
        let next_t = transactions[lo].timestamp.as_secs();
        if next_t >= window_end {
            // Jump to the first window that can contain the next
            // transaction instead of sliding through empty windows.
            k = k.max((next_t - d).div_euclid(s) + 1);
            continue;
        }
        let mut hi = lo;
        while hi < transactions.len() && transactions[hi].timestamp.as_secs() < window_end {
            hi += 1;
        }
        emit(Timestamp(window_start), &transactions[lo..hi]);
        k += 1;
    }
}

/// Push-based sliding-window composer for online monitoring.
///
/// [`WindowAggregator`] computes windows over a complete dataset; this
/// stream computes the same windows incrementally as transactions arrive,
/// emitting a window as soon as event time has moved past its end. Feed it
/// only the transactions of the monitored key (one user or one device),
/// in timestamp order.
///
/// # Examples
///
/// ```
/// use proxylog::UserId;
/// use webprofiler::{Vocabulary, WindowConfig, WindowKey, WindowStream};
/// # use proxylog::{AppTypeId, CategoryId, DeviceId, HttpAction, Reputation, SiteId,
/// #     SubtypeId, Taxonomy, Timestamp, Transaction, UriScheme};
///
/// let vocab = Vocabulary::new(Taxonomy::paper_scale());
/// let mut stream =
///     WindowStream::new(&vocab, WindowConfig::PAPER_DEFAULT, WindowKey::User(UserId(0)));
/// # let tx = |secs: i64| Transaction {
/// #     timestamp: Timestamp(secs), user: UserId(0), device: DeviceId(0), site: SiteId(0),
/// #     action: HttpAction::Get, scheme: UriScheme::Http, category: CategoryId(0),
/// #     subtype: SubtypeId(0), app_type: AppTypeId(0), reputation: Reputation::Minimal,
/// #     private_destination: false,
/// # };
/// assert!(stream.push(tx(10)).is_empty()); // window still open
/// let done = stream.push(tx(500)); // event time passed the first windows
/// assert!(!done.is_empty());
/// let tail = stream.flush();
/// assert!(!tail.is_empty());
/// ```
#[derive(Debug)]
pub struct WindowStream<'a> {
    vocab: &'a Vocabulary,
    config: WindowConfig,
    key: WindowKey,
    /// Time-sorted transactions still needed by open windows.
    buffer: Vec<Transaction>,
    /// Next window index to consider for emission (windows below this are
    /// already emitted or permanently empty).
    next_k: Option<i64>,
    last_time: Option<i64>,
    /// Allowed lateness `L` for [`offer`](Self::offer): emission lags the
    /// newest event time by `L` seconds so stragglers can still land.
    lateness_secs: i64,
    /// Newest event time seen (the watermark is this minus the lateness).
    max_time: Option<i64>,
    /// Transactions dropped by [`offer`](Self::offer) because every window
    /// that could contain them was already emitted.
    late_dropped: u64,
}

impl<'a> WindowStream<'a> {
    /// Creates an empty stream.
    pub fn new(vocab: &'a Vocabulary, config: WindowConfig, key: WindowKey) -> Self {
        Self {
            vocab,
            config,
            key,
            buffer: Vec::new(),
            next_k: None,
            last_time: None,
            lateness_secs: 0,
            max_time: None,
            late_dropped: 0,
        }
    }

    /// Sets the allowed lateness (seconds) for [`offer`](Self::offer):
    /// window emission lags the newest event time by this much, so any
    /// transaction at most this far behind the stream head is never
    /// dropped.
    pub fn with_lateness(mut self, lateness_secs: u32) -> Self {
        self.lateness_secs = i64::from(lateness_secs);
        self
    }

    /// The grouping key windows are tagged with.
    pub fn key(&self) -> WindowKey {
        self.key
    }

    /// Number of buffered (not yet fully emitted) transactions.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Transactions [`offer`](Self::offer) dropped as too late (all their
    /// windows were already emitted).
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Feeds one transaction; returns every window that became complete
    /// (its end is `<=` the new transaction's timestamp), in order.
    ///
    /// # Panics
    ///
    /// Panics if `tx` is older than a previously pushed transaction.
    pub fn push(&mut self, tx: Transaction) -> Vec<TransactionWindow> {
        let t = tx.timestamp.as_secs();
        assert!(
            self.last_time.is_none_or(|last| t >= last),
            "out-of-order transaction at {}",
            tx.timestamp
        );
        self.last_time = Some(t);
        self.max_time = Some(self.max_time.map_or(t, |m| m.max(t)));
        let s = i64::from(self.config.shift_secs());
        let d = i64::from(self.config.duration_secs());
        if self.next_k.is_none() {
            // First window that can contain this first transaction.
            self.next_k = Some((t - d).div_euclid(s) + 1);
        }
        // Windows with end <= t are complete: k·S + D <= t.
        let complete_up_to = (t - d).div_euclid(s);
        let emitted = self.emit_through(complete_up_to);
        self.buffer.push(tx);
        emitted
    }

    /// Feeds one transaction that may arrive out of order, unlike
    /// [`push`](Self::push) which panics on disorder.
    ///
    /// A transaction is accepted as long as none of the windows that could
    /// contain it has been emitted yet. Emission is watermark-driven: a
    /// window closes once its end falls behind `newest event time − L`,
    /// where `L` is the allowed lateness ([`with_lateness`](Self::with_lateness)),
    /// so any transaction at most `L` seconds behind the stream head is
    /// always accepted. Older stragglers are dropped and counted
    /// ([`late_dropped`](Self::late_dropped)).
    ///
    /// In-order input is never dropped regardless of `L`, and with the
    /// default `L = 0` this emits exactly like [`push`](Self::push).
    pub fn offer(&mut self, tx: Transaction) -> Vec<TransactionWindow> {
        let t = tx.timestamp.as_secs();
        let s = i64::from(self.config.shift_secs());
        let d = i64::from(self.config.duration_secs());
        // First window that can contain this transaction.
        let k_min = (t - d).div_euclid(s) + 1;
        if self.next_k.is_some_and(|next_k| k_min < next_k) {
            self.late_dropped += 1;
            return Vec::new();
        }
        if self.next_k.is_none() {
            self.next_k = Some(k_min);
        }
        let pos = self.buffer.partition_point(|b| b.timestamp <= tx.timestamp);
        self.buffer.insert(pos, tx);
        let max_time = self.max_time.map_or(t, |m| m.max(t));
        self.max_time = Some(max_time);
        self.last_time = self.max_time;
        // Windows with end <= watermark are complete.
        self.emit_through((max_time - self.lateness_secs - d).div_euclid(s))
    }

    /// Emits every remaining non-empty window and clears the stream.
    pub fn flush(&mut self) -> Vec<TransactionWindow> {
        let Some(last) = self.buffer.last() else {
            return Vec::new();
        };
        let s = i64::from(self.config.shift_secs());
        let last_k = last.timestamp.as_secs().div_euclid(s);
        let emitted = self.emit_through(last_k);
        self.buffer.clear();
        self.next_k = None;
        self.last_time = None;
        self.max_time = None;
        emitted
    }

    /// Emits non-empty windows with indices `next_k ..= k_limit`, advances
    /// `next_k`, and drops buffered transactions no future window needs.
    fn emit_through(&mut self, k_limit: i64) -> Vec<TransactionWindow> {
        let mut result = Vec::new();
        let Some(mut k) = self.next_k else {
            return result;
        };
        let s = i64::from(self.config.shift_secs());
        let d = i64::from(self.config.duration_secs());
        while k <= k_limit {
            let window_start = k * s;
            let window_end = window_start + d;
            let lo = self.buffer.partition_point(|tx| tx.timestamp.as_secs() < window_start);
            let hi = self.buffer.partition_point(|tx| tx.timestamp.as_secs() < window_end);
            if lo < hi {
                let slice = &self.buffer[lo..hi];
                let mut users: Vec<UserId> = slice.iter().map(|tx| tx.user).collect();
                users.sort_unstable();
                users.dedup();
                result.push(TransactionWindow {
                    key: self.key,
                    start: Timestamp(window_start),
                    features: aggregate_window(self.vocab, slice),
                    transaction_count: hi - lo,
                    users,
                });
                k += 1;
            } else if let Some(tx) = self.buffer.get(lo) {
                // Jump past the empty gap to the first window that can
                // contain the next buffered transaction.
                let jump = (tx.timestamp.as_secs() - d).div_euclid(s) + 1;
                k = jump.max(k + 1);
            } else {
                k = k_limit + 1;
            }
        }
        self.next_k = Some(k);
        // Transactions older than the next window's start are done.
        let next_start = k * s;
        self.buffer.retain(|tx| tx.timestamp.as_secs() >= next_start);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proxylog::{
        AppTypeId, CategoryId, HttpAction, Reputation, SiteId, SubtypeId, Taxonomy, UriScheme,
    };
    use std::sync::Arc;

    fn vocab() -> Vocabulary {
        Vocabulary::new(Taxonomy::paper_scale())
    }

    fn tx_at(secs: i64, user: u32) -> Transaction {
        Transaction {
            timestamp: Timestamp(secs),
            user: UserId(user),
            device: DeviceId(0),
            site: SiteId(0),
            action: HttpAction::Get,
            scheme: UriScheme::Http,
            category: CategoryId(0),
            subtype: SubtypeId(0),
            app_type: AppTypeId(0),
            reputation: Reputation::Minimal,
            private_destination: false,
        }
    }

    #[test]
    fn config_validation() {
        assert!(WindowConfig::new(60, 30).is_ok());
        assert!(WindowConfig::new(60, 60).is_ok());
        assert!(WindowConfig::new(0, 0).is_err());
        assert!(WindowConfig::new(30, 60).is_err());
        assert!(WindowConfig::new(60, 0).is_err());
        let err = WindowConfig::new(30, 60).unwrap_err();
        assert!(err.to_string().contains("S <= D"));
    }

    #[test]
    fn paper_default_is_60_30() {
        assert_eq!(WindowConfig::PAPER_DEFAULT.duration_secs(), 60);
        assert_eq!(WindowConfig::PAPER_DEFAULT.shift_secs(), 30);
        assert_eq!(WindowConfig::default(), WindowConfig::PAPER_DEFAULT);
    }

    #[test]
    fn single_transaction_appears_in_overlapping_windows() {
        // D=60, S=30: a transaction at t=65 falls in windows starting at 30
        // and 60.
        let v = vocab();
        let agg = WindowAggregator::new(&v, WindowConfig::new(60, 30).unwrap());
        let windows = agg.windows_over(&[tx_at(65, 0)], WindowKey::User(UserId(0)));
        let starts: Vec<i64> = windows.iter().map(|w| w.start.as_secs()).collect();
        assert_eq!(starts, vec![30, 60]);
        assert!(windows.iter().all(|w| w.transaction_count == 1));
    }

    #[test]
    fn non_overlapping_when_shift_equals_duration() {
        let v = vocab();
        let agg = WindowAggregator::new(&v, WindowConfig::new(60, 60).unwrap());
        let txs = vec![tx_at(10, 0), tx_at(70, 0), tx_at(130, 0)];
        let windows = agg.windows_over(&txs, WindowKey::User(UserId(0)));
        assert_eq!(windows.len(), 3);
        assert!(windows.iter().all(|w| w.transaction_count == 1));
    }

    #[test]
    fn windows_group_cohabiting_transactions() {
        let v = vocab();
        let agg = WindowAggregator::new(&v, WindowConfig::new(60, 30).unwrap());
        let txs = vec![tx_at(0, 0), tx_at(10, 0), tx_at(59, 0)];
        let windows = agg.windows_over(&txs, WindowKey::User(UserId(0)));
        // Window at 0 holds all three; window at 30 holds only t=59; window
        // at -30 holds t=0..10.
        let find = |start: i64| windows.iter().find(|w| w.start.as_secs() == start);
        assert_eq!(find(0).unwrap().transaction_count, 3);
        assert_eq!(find(30).unwrap().transaction_count, 1);
        assert_eq!(find(-30).unwrap().transaction_count, 2);
    }

    #[test]
    fn empty_gaps_are_skipped_efficiently() {
        let v = vocab();
        let agg = WindowAggregator::new(&v, WindowConfig::new(60, 30).unwrap());
        // Two transactions a year apart: the sweep must not emit a million
        // empty windows (completes instantly and yields only hit windows).
        let txs = vec![tx_at(0, 0), tx_at(365 * 86_400, 0)];
        let windows = agg.windows_over(&txs, WindowKey::User(UserId(0)));
        assert_eq!(windows.len(), 4); // two per transaction (overlap factor 2)
        assert!(windows.iter().all(|w| w.transaction_count == 1));
    }

    #[test]
    fn user_windows_are_user_specific() {
        let v = vocab();
        let taxonomy = Taxonomy::paper_scale();
        let dataset =
            Dataset::new(Arc::clone(&taxonomy), vec![tx_at(0, 0), tx_at(1, 1), tx_at(2, 0)]);
        let agg = WindowAggregator::new(&v, WindowConfig::PAPER_DEFAULT);
        let w0 = agg.user_windows(&dataset, UserId(0));
        assert!(w0.iter().all(|w| w.key == WindowKey::User(UserId(0))));
        let total: usize = w0.iter().map(|w| w.transaction_count).sum();
        assert_eq!(total, 4); // 2 transactions × 2 overlapping windows each
    }

    #[test]
    fn device_windows_mix_users() {
        let v = vocab();
        let taxonomy = Taxonomy::paper_scale();
        let dataset = Dataset::new(Arc::clone(&taxonomy), vec![tx_at(0, 0), tx_at(1, 1)]);
        let agg = WindowAggregator::new(&v, WindowConfig::new(60, 60).unwrap());
        let windows = agg.device_windows(&dataset, DeviceId(0));
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].transaction_count, 2);
    }

    #[test]
    fn no_transactions_no_windows() {
        let v = vocab();
        let agg = WindowAggregator::new(&v, WindowConfig::PAPER_DEFAULT);
        assert!(agg.windows_over(&[], WindowKey::User(UserId(0))).is_empty());
    }

    #[test]
    fn negative_timestamps_are_handled() {
        let v = vocab();
        let agg = WindowAggregator::new(&v, WindowConfig::new(60, 30).unwrap());
        let windows = agg.windows_over(&[tx_at(-100, 0)], WindowKey::User(UserId(0)));
        assert_eq!(windows.len(), 2);
        for w in &windows {
            assert!(w.start.as_secs() <= -100);
            assert!(w.start.as_secs() + 60 > -100);
        }
    }

    /// Batch and streaming windowing must agree exactly.
    fn assert_stream_matches_batch(txs: &[Transaction], config: WindowConfig) {
        let v = vocab();
        let aggregator = WindowAggregator::new(&v, config);
        let batch = aggregator.windows_over(txs, WindowKey::User(UserId(0)));
        let mut stream = WindowStream::new(&v, config, WindowKey::User(UserId(0)));
        let mut streamed = Vec::new();
        for tx in txs {
            streamed.extend(stream.push(*tx));
        }
        streamed.extend(stream.flush());
        assert_eq!(streamed.len(), batch.len(), "window counts differ");
        for (a, b) in streamed.iter().zip(&batch) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.transaction_count, b.transaction_count);
            assert_eq!(a.features, b.features);
            assert_eq!(a.users, b.users);
        }
    }

    #[test]
    fn stream_matches_batch_dense_input() {
        let txs: Vec<Transaction> = (0..200).map(|i| tx_at(i * 7, 0)).collect();
        assert_stream_matches_batch(&txs, WindowConfig::new(60, 30).unwrap());
    }

    #[test]
    fn stream_matches_batch_with_gaps() {
        let mut txs = Vec::new();
        for i in 0..5 {
            txs.push(tx_at(i * 10, 0));
        }
        txs.push(tx_at(100_000, 0));
        txs.push(tx_at(100_001, 0));
        txs.push(tx_at(5_000_000, 0));
        assert_stream_matches_batch(&txs, WindowConfig::new(60, 30).unwrap());
        assert_stream_matches_batch(&txs, WindowConfig::new(60, 6).unwrap());
        assert_stream_matches_batch(&txs, WindowConfig::new(300, 300).unwrap());
    }

    #[test]
    fn stream_emits_incrementally() {
        let v = vocab();
        let mut stream =
            WindowStream::new(&v, WindowConfig::new(60, 60).unwrap(), WindowKey::User(UserId(0)));
        assert!(stream.push(tx_at(10, 0)).is_empty());
        assert!(stream.push(tx_at(30, 0)).is_empty());
        // Crossing the window end completes the first window.
        let done = stream.push(tx_at(120, 0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].transaction_count, 2);
        // Buffer drops what it no longer needs.
        assert_eq!(stream.buffered(), 1);
        let tail = stream.flush();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].transaction_count, 1);
    }

    #[test]
    fn stream_flush_on_empty_is_empty() {
        let v = vocab();
        let mut stream =
            WindowStream::new(&v, WindowConfig::PAPER_DEFAULT, WindowKey::User(UserId(0)));
        assert!(stream.flush().is_empty());
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn stream_rejects_out_of_order() {
        let v = vocab();
        let mut stream =
            WindowStream::new(&v, WindowConfig::PAPER_DEFAULT, WindowKey::User(UserId(0)));
        let _ = stream.push(tx_at(100, 0));
        let _ = stream.push(tx_at(50, 0));
    }

    #[test]
    fn stream_reusable_after_flush() {
        let v = vocab();
        let mut stream =
            WindowStream::new(&v, WindowConfig::new(60, 60).unwrap(), WindowKey::User(UserId(0)));
        let _ = stream.push(tx_at(10, 0));
        let _ = stream.flush();
        // Times may restart after a flush.
        assert!(stream.push(tx_at(0, 0)).is_empty());
        assert_eq!(stream.flush().len(), 1);
    }

    #[test]
    fn windows_straddle_day_boundaries() {
        // Transactions just before and after midnight share the straddling
        // windows: the epoch-aligned grid does not restart at day breaks.
        let v = vocab();
        let agg = WindowAggregator::new(&v, WindowConfig::new(60, 30).unwrap());
        let midnight = 86_400;
        let txs = vec![tx_at(midnight - 10, 0), tx_at(midnight + 10, 1)];
        let windows = agg.windows_over(&txs, WindowKey::Device(DeviceId(0)));
        let both: Vec<_> = windows.iter().filter(|w| w.transaction_count == 2).collect();
        assert_eq!(both.len(), 1, "one window spans the boundary");
        assert_eq!(both[0].start.as_secs(), midnight - 30);
        assert_eq!(both[0].users, vec![UserId(0), UserId(1)]);
        assert_stream_matches_batch(&txs, WindowConfig::new(60, 30).unwrap());
    }

    #[test]
    fn single_transaction_device_emits_all_overlaps() {
        // A device with exactly one transaction: D/S overlapping windows,
        // batch and stream alike, and flush-only emission (nothing closes
        // while the stream is live).
        let config = WindowConfig::new(60, 30).unwrap();
        let v = vocab();
        let mut stream = WindowStream::new(&v, config, WindowKey::Device(DeviceId(0)));
        assert!(stream.push(tx_at(12_345, 3)).is_empty());
        let tail = stream.flush();
        assert_eq!(tail.len(), 2);
        assert!(tail.iter().all(|w| w.transaction_count == 1 && w.users == vec![UserId(3)]));
        assert_stream_matches_batch(&[tx_at(12_345, 3)], config);
    }

    #[test]
    fn duplicate_timestamps_stay_in_one_window() {
        let config = WindowConfig::new(60, 30).unwrap();
        let txs = vec![tx_at(90, 0), tx_at(90, 1), tx_at(90, 0), tx_at(90, 2)];
        let v = vocab();
        let agg = WindowAggregator::new(&v, config);
        let windows = agg.windows_over(&txs, WindowKey::Device(DeviceId(0)));
        assert_eq!(windows.len(), 2);
        for w in &windows {
            assert_eq!(w.transaction_count, 4);
            assert_eq!(w.users, vec![UserId(0), UserId(1), UserId(2)]);
        }
        assert_stream_matches_batch(&txs, config);
    }

    #[test]
    fn offer_accepts_out_of_order_within_watermark() {
        // A shuffled arrival order within the allowed lateness must produce
        // exactly the batch windows over the time-sorted input.
        let config = WindowConfig::new(60, 30).unwrap();
        let sorted: Vec<Transaction> = (0..40).map(|i| tx_at(i * 13, (i % 3) as u32)).collect();
        // Swap adjacent pairs: each transaction arrives at most 13 s late.
        let mut shuffled = sorted.clone();
        for pair in shuffled.chunks_mut(2) {
            pair.reverse();
        }
        let v = vocab();
        let batch =
            WindowAggregator::new(&v, config).windows_over(&sorted, WindowKey::User(UserId(0)));
        let mut stream =
            WindowStream::new(&v, config, WindowKey::User(UserId(0))).with_lateness(15);
        let mut streamed = Vec::new();
        for tx in &shuffled {
            streamed.extend(stream.offer(*tx));
        }
        streamed.extend(stream.flush());
        assert_eq!(stream.late_dropped(), 0, "nothing within the watermark is dropped");
        assert_eq!(streamed.len(), batch.len());
        for (a, b) in streamed.iter().zip(&batch) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.features, b.features);
            assert_eq!(a.users, b.users);
        }
    }

    #[test]
    fn offer_drops_and_counts_too_late_transactions() {
        let config = WindowConfig::new(60, 30).unwrap();
        let v = vocab();
        let mut stream = WindowStream::new(&v, config, WindowKey::User(UserId(0)));
        let _ = stream.offer(tx_at(10, 0));
        // Event time far ahead: windows around t=10 are all emitted.
        let emitted = stream.offer(tx_at(1_000, 0));
        assert!(!emitted.is_empty());
        // A straggler whose windows are long closed is dropped...
        assert!(stream.offer(tx_at(20, 0)).is_empty());
        assert_eq!(stream.late_dropped(), 1);
        assert_eq!(stream.buffered(), 1, "the straggler is not buffered");
        // ...but one that still fits an open window is kept.
        let _ = stream.offer(tx_at(990, 0));
        assert_eq!(stream.late_dropped(), 1);
        let tail = stream.flush();
        assert!(tail.iter().any(|w| w.transaction_count == 2));
    }

    #[test]
    fn offer_matches_push_for_in_order_input() {
        let config = WindowConfig::new(60, 30).unwrap();
        let txs: Vec<Transaction> = (0..50).map(|i| tx_at(i * 11, 0)).collect();
        let v = vocab();
        let mut pushed = WindowStream::new(&v, config, WindowKey::User(UserId(0)));
        let mut offered = WindowStream::new(&v, config, WindowKey::User(UserId(0)));
        for tx in &txs {
            let a = pushed.push(*tx);
            let b = offered.offer(*tx);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.start, y.start);
                assert_eq!(x.features, y.features);
            }
        }
        assert_eq!(pushed.flush().len(), offered.flush().len());
        assert_eq!(offered.late_dropped(), 0);
    }

    #[test]
    fn features_match_direct_aggregation() {
        let v = vocab();
        let agg = WindowAggregator::new(&v, WindowConfig::new(60, 60).unwrap());
        let txs = vec![tx_at(0, 0), tx_at(30, 0)];
        let windows = agg.windows_over(&txs, WindowKey::User(UserId(0)));
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].features, crate::features::aggregate_window(&v, &txs));
    }
}
