//! Profiling users by modeling web transactions.
//!
//! This crate implements the primary contribution of *Profiling Users by
//! Modeling Web Transactions* (Tomšů, Marchal, Asokan — ICDCS 2017): a
//! feature extraction and modeling pipeline that learns a per-user profile
//! from secure-proxy web-transaction logs and uses it to decide, within
//! minutes, whether a monitored device is being operated by a known user.
//!
//! # Pipeline
//!
//! 1. **Vocabulary** ([`Vocabulary`]): every value of the log's nominal
//!    fields (HTTP action, URI scheme, website category, media type,
//!    application type) becomes a bag-of-words column; reputation and the
//!    public/private destination flag add numeric columns. At the paper's
//!    taxonomy sizes this yields 843 columns (Tab. I).
//! 2. **Windows** ([`WindowConfig`], [`WindowAggregator`]): transactions of
//!    one user (training) or one device (identification) are aggregated
//!    over sliding windows of duration `D` shifted by `S` — binary columns
//!    by disjunction, numeric columns by averaging (Sect. III-C).
//! 3. **Profiles** ([`ProfileTrainer`], [`UserProfile`]): each user's
//!    window vectors train a one-class classifier ([`ModelKind::OcSvm`] or
//!    [`ModelKind::Svdd`], from the [`ocsvm`] crate).
//! 4. **Optimization** ([`WindowGridSearch`], [`ModelGridSearch`]): `D, S`
//!    are optimized globally, kernel and `ν`/`C` per user, maximizing
//!    `ACC = ACCself − ACCother` (Sect. IV-C).
//! 5. **Evaluation & identification** ([`ConfusionMatrix`],
//!    [`identify_on_device`], [`consecutive_window_vote`]): user
//!    differentiation on test windows (Tab. IV/V) and online
//!    identification on shared devices (Fig. 3).
//!
//! The temporal-consistency analysis backing the whole approach
//! (novelty ratios, Figs. 1–2) lives in [`feature_novelty`],
//! [`window_novelty`] and the sweep helpers.
//!
//! # Quick start
//!
//! ```
//! use tracegen::{Scenario, TraceGenerator};
//! use webprofiler::{acceptance_ratio, ProfileTrainer, Vocabulary};
//!
//! // Synthetic stand-in for the vendor's benchmark logs.
//! let dataset = TraceGenerator::new(Scenario::quick_test()).generate();
//! let (train, test) = dataset.split_chronological_per_user(0.75);
//!
//! let vocab = Vocabulary::new(dataset.taxonomy().clone());
//! let trainer = ProfileTrainer::new(&vocab).max_training_windows(300);
//! let user = *train.user_counts().iter().max_by_key(|&(_, &n)| n).unwrap().0;
//! let profile = trainer.train(&train, user)?;
//!
//! let test_vectors = trainer.training_vectors(&test, user);
//! let acc_self = acceptance_ratio(&profile, &test_vectors);
//! assert!(acc_self > 0.5, "self acceptance {acc_self}");
//! # Ok::<(), webprofiler::ProfileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod auth;
mod baselines;
mod calibrate;
mod drift;
mod explain;
mod features;
mod gridsearch;
mod identify;
mod markov;
mod metrics;
mod novelty;
mod prefilter;
mod profile;
mod retrain;
mod roc;
mod schedule;
mod trainer;
mod vocab;
mod window;

pub use auth::{AuthDecision, AuthenticationMonitor, TakeoverEvaluation};
pub use baselines::FrequencyProfile;
pub use calibrate::{calibrate_without_impostors, default_candidates, Calibration};
pub use drift::DriftMonitor;
pub use explain::{explain_decision, explanation_report, FeatureContribution};
pub use features::{aggregate_window, aggregate_window_with, extract_transaction, AggregationMode};
pub use gridsearch::{
    compute_window_sets, ModelGridCell, ModelGridSearch, SweepBackend, SweepStats, WindowGridRow,
    WindowGridSearch, WindowSets,
};
pub use identify::{
    consecutive_window_vote, identify_on_device, identify_on_device_prefiltered, majority_vote,
    IdentificationQuality, IdentifiedWindow, OnlineIdentifier,
};
pub use markov::MarkovProfile;
pub use metrics::{acceptance_ratio, acceptance_ratio_refs, AcceptanceSummary, ConfusionMatrix};
pub use novelty::{
    feature_novelty, sweep_feature_novelty, sweep_window_novelty, window_novelty, FeatureNovelty,
    FeatureNoveltyRow, MeanVariance, WindowNoveltyRow,
};
pub use prefilter::{CandidateIndex, ProfileSketch, ShortlistScratch};
pub use profile::{ModelKind, ProfileParams, UserProfile};
pub use retrain::{drift_partial_retrain, DriftRetrainConfig, ProfileFingerprint, RetrainReport};
pub use roc::{auc, best_operating_point, roc_curve, RocPoint};
pub use trainer::{parallel_map, ProfileError, ProfileTrainer};
pub use vocab::{ColumnKind, Vocabulary};
pub use window::{
    InvalidWindowConfigError, TransactionWindow, WindowAggregator, WindowConfig, WindowKey,
    WindowStream,
};

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Vocabulary>();
        assert_send_sync::<UserProfile>();
        assert_send_sync::<WindowConfig>();
        assert_send_sync::<ConfusionMatrix>();
        assert_send_sync::<ProfileError>();
    }
}
